"""Unit tests for the expression AST and aggregate specs."""

import datetime

import pytest

from repro.common.errors import AnalysisError
from repro.sql.expr import (
    Alias,
    BinaryOp,
    Column,
    FuncCall,
    Literal,
    col,
    combine_conjuncts,
    lit,
    split_conjuncts,
)
from repro.sql.functions import (
    AggregateSpec,
    avg,
    count,
    count_distinct,
    count_star,
    max_,
    min_,
    sum_,
)

ROW = {"a": 3, "b": 10, "s": "hello", "n": None,
       "d": datetime.date(1994, 5, 1)}


class TestEvaluation:
    def test_column(self):
        assert col("a").eval(ROW) == 3

    def test_missing_column_raises(self):
        with pytest.raises(AnalysisError):
            col("zzz").eval(ROW)

    def test_literal(self):
        assert lit(42).eval(ROW) == 42

    def test_arithmetic(self):
        assert (col("a") + col("b")).eval(ROW) == 13
        assert (col("b") - 1).eval(ROW) == 9
        assert (col("a") * 2).eval(ROW) == 6
        assert (col("b") / 4).eval(ROW) == 2.5
        assert (1 + col("a")).eval(ROW) == 4
        assert (20 - col("b")).eval(ROW) == 10

    def test_comparisons(self):
        assert (col("a") < col("b")).eval(ROW) is True
        assert (col("a") >= 3).eval(ROW) is True
        assert (col("a") == 3).eval(ROW) is True
        assert (col("a") != 3).eval(ROW) is False

    def test_boolean_connectives(self):
        expr = (col("a") > 1) & (col("b") < 20)
        assert expr.eval(ROW) is True
        assert ((col("a") > 5) | (col("b") == 10)).eval(ROW) is True
        assert (~(col("a") == 3)).eval(ROW) is False

    def test_negation(self):
        assert (-col("a")).eval(ROW) == -3

    def test_null_comparison_is_false(self):
        assert (col("n") == 1).eval(ROW) is False
        assert (col("n") < 1).eval(ROW) is False

    def test_null_arithmetic_propagates(self):
        assert (col("n") + 1).eval(ROW) is None

    def test_like(self):
        assert col("s").like("he%").eval(ROW)
        assert col("s").like("h_llo").eval(ROW)
        assert not col("s").like("x%").eval(ROW)
        assert col("s").not_like("x%").eval(ROW)

    def test_like_null_is_false(self):
        assert col("n").like("%").eval(ROW) is False

    def test_like_escapes_regex_chars(self):
        row = {"s": "a.b"}
        assert col("s").like("a.b").eval(row)
        assert not col("s").like("axb").eval(row)

    def test_isin(self):
        assert col("a").isin([1, 2, 3]).eval(ROW)
        assert col("a").not_in([5, 6]).eval(ROW)

    def test_between(self):
        assert col("a").between(1, 5).eval(ROW)
        assert not col("a").between(4, 5).eval(ROW)

    def test_is_null(self):
        assert col("n").is_null().eval(ROW)
        assert col("a").is_not_null().eval(ROW)

    def test_date_comparison(self):
        assert (col("d") < lit(datetime.date(1995, 1, 1))).eval(ROW)

    def test_func_call(self):
        assert FuncCall("abs", [lit(-4)]).eval(ROW) == 4
        assert FuncCall("upper", [col("s")]).eval(ROW) == "HELLO"
        assert FuncCall("year", [col("d")]).eval(ROW) == 1994
        assert FuncCall("length", [col("s")]).eval(ROW) == 5
        assert FuncCall("coalesce", [col("n"), lit(7)]).eval(ROW) == 7

    def test_func_null_safe(self):
        assert FuncCall("abs", [col("n")]).eval(ROW) is None

    def test_unknown_func(self):
        with pytest.raises(AnalysisError):
            FuncCall("no_such_func", [])

    def test_unknown_operator(self):
        with pytest.raises(AnalysisError):
            BinaryOp("%%", lit(1), lit(2))


class TestStructure:
    def test_references(self):
        expr = (col("a") + col("b")) > col("c")
        assert expr.references() == {"a", "b", "c"}

    def test_alias_output_name(self):
        assert (col("a") + 1).alias("a1").output_name() == "a1"
        assert col("a").output_name() == "a"

    def test_split_and_combine_conjuncts(self):
        expr = (col("a") > 1) & (col("b") > 2) & (col("c") > 3)
        parts = split_conjuncts(expr)
        assert len(parts) == 3
        rebuilt = combine_conjuncts(parts)
        row = {"a": 5, "b": 5, "c": 5}
        assert rebuilt.eval(row) == expr.eval(row)

    def test_combine_empty(self):
        assert combine_conjuncts([]) is None

    def test_repr_roundtrippable_text(self):
        assert "a" in repr(col("a") + 1)


class TestAggregateSpecs:
    ROWS = [{"v": 1}, {"v": 3}, {"v": None}, {"v": 3}]

    def _run(self, spec: AggregateSpec):
        acc = spec.zero()
        for row in self.ROWS:
            acc = spec.add(acc, row)
        return spec.finish(acc)

    def test_count_star(self):
        assert self._run(count_star("n")) == 4

    def test_count_column_skips_nulls(self):
        assert self._run(count(col("v"), "n")) == 3

    def test_count_distinct(self):
        assert self._run(count_distinct(col("v"), "n")) == 2

    def test_sum(self):
        assert self._run(sum_(col("v"), "s")) == 7

    def test_sum_empty_is_null(self):
        spec = sum_(col("v"), "s")
        assert spec.finish(spec.zero()) is None

    def test_avg(self):
        assert self._run(avg(col("v"), "a")) == pytest.approx(7 / 3)

    def test_avg_empty_is_null(self):
        spec = avg(col("v"), "a")
        assert spec.finish(spec.zero()) is None

    def test_min_max(self):
        assert self._run(min_(col("v"), "m")) == 1
        assert self._run(max_(col("v"), "m")) == 3

    def test_merge_matches_sequential(self):
        spec = sum_(col("v"), "s")
        left = spec.zero()
        for row in self.ROWS[:2]:
            left = spec.add(left, row)
        right = spec.zero()
        for row in self.ROWS[2:]:
            right = spec.add(right, row)
        assert spec.finish(spec.merge(left, right)) == 7

    def test_merge_with_null_sides(self):
        spec = min_(col("v"), "m")
        assert spec.merge(None, 5) == 5
        assert spec.merge(5, None) == 5

    def test_unsupported_aggregate(self):
        with pytest.raises(AnalysisError):
            AggregateSpec("median", col("v"), "m")

    def test_non_count_requires_expr(self):
        with pytest.raises(AnalysisError):
            AggregateSpec("sum", None, "s")
