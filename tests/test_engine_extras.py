"""Tests for engine extras: stats, cartesian, debug string, union-all SQL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AnalysisError
from repro.engine import EngineContext
from repro.engine.rdd import StatCounter
from repro.sql import SQLSession


class TestStatCounter:
    def test_single_pass_statistics(self, ctx):
        rdd = ctx.parallelize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0], 3)
        st_ = rdd.stats()
        assert st_.count == 8
        assert st_.mean == pytest.approx(5.0)
        assert st_.stdev == pytest.approx(2.0)
        assert (st_.min, st_.max) == (2.0, 9.0)

    def test_empty(self):
        counter = StatCounter()
        assert counter.count == 0
        assert counter.variance != counter.variance  # NaN

    def test_merge_empty_into_full(self):
        a = StatCounter()
        for v in (1.0, 2.0):
            a.merge_value(v)
        a.merge_stats(StatCounter())
        assert a.count == 2

    @given(
        left=st.lists(st.floats(-100, 100), min_size=1, max_size=30),
        right=st.lists(st.floats(-100, 100), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_sequential(self, left, right):
        merged = StatCounter()
        for v in left:
            merged.merge_value(v)
        other = StatCounter()
        for v in right:
            other.merge_value(v)
        merged.merge_stats(other)

        sequential = StatCounter()
        for v in left + right:
            sequential.merge_value(v)
        assert merged.count == sequential.count
        assert merged.mean == pytest.approx(sequential.mean, abs=1e-9)
        assert merged.variance == pytest.approx(sequential.variance, abs=1e-6)

    def test_zero_not_shared_between_partitions(self, ctx):
        """Regression: fold/aggregate must clone mutable zero values."""
        out = ctx.parallelize(range(10), 4).fold([], lambda a, b: a + [b] if not isinstance(b, list) else a + b)
        assert sorted(v for v in out) == list(range(10))

    def test_aggregate_with_list_zero(self, ctx):
        out = ctx.parallelize(range(6), 3).aggregate(
            [], lambda acc, v: acc + [v], lambda a, b: a + b
        )
        assert sorted(out) == list(range(6))


class TestCartesianAndDebug:
    def test_cartesian(self, ctx):
        out = sorted(
            ctx.parallelize([1, 2], 2).cartesian(
                ctx.parallelize(["a", "b"])
            ).collect()
        )
        assert out == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_cartesian_counts(self, ctx):
        left = ctx.parallelize(range(5), 2)
        right = ctx.parallelize(range(7), 3)
        assert left.cartesian(right).count() == 35

    def test_debug_string_shows_lineage(self, ctx):
        rdd = ctx.parallelize([1]).map(lambda v: v).filter(lambda v: True)
        text = rdd.to_debug_string()
        assert "ParallelCollectionRDD" in text
        assert text.count("MapPartitionsRDD") == 2

    def test_debug_string_marks_cached(self, ctx):
        rdd = ctx.parallelize([1]).map(lambda v: v).cache()
        assert "[cached]" in rdd.to_debug_string()


class TestUnionAll:
    @pytest.fixture
    def session(self):
        sess = SQLSession()
        sess.create_table("a", [{"x": 1, "y": "p"}, {"x": 2, "y": "q"}])
        sess.create_table("b", [{"x": 10, "y": "r"}])
        return sess

    def test_dataframe_union_all(self, session):
        df = session.table("a").union_all(session.table("b"))
        assert df.count() == 3

    def test_sql_union_all(self, session):
        rows = session.sql(
            "SELECT x FROM a UNION ALL SELECT x FROM b"
        ).collect()
        assert sorted(r["x"] for r in rows) == [1, 2, 10]

    def test_union_all_then_aggregate(self, session):
        total = session.table("a").union_all(session.table("b"))
        from repro.sql import count_star

        assert total.agg(count_star("n")).scalar() == 3

    def test_union_all_schema_mismatch(self, session):
        session.create_table("c", [{"z": 1}])
        with pytest.raises(AnalysisError):
            session.table("a").union_all(session.table("c"))

    def test_three_way_sql_union(self, session):
        session.create_table("c", [{"x": 99, "y": "s"}])
        rows = session.sql(
            "SELECT x FROM a UNION ALL SELECT x FROM b "
            "UNION ALL SELECT x FROM c"
        ).collect()
        assert len(rows) == 4

    def test_union_all_optimizes_consistently(self, session):
        df = session.table("a").union_all(session.table("b"))
        optimized = df.collect()
        session.enable_optimizer = False
        assert df.collect() == optimized
