"""Tests for the extension workloads (Q12/Q14) and CASE WHEN plumbing."""

import pytest

from repro.core import UPAConfig, UPASession
from repro.core.sqlbridge import compile_sql
from repro.sql.expr import CaseWhen, col, lit
from repro.tpch.queries.extras import Q12, Q14, extension_queries


class TestCaseWhenExpression:
    def test_first_matching_branch_wins(self):
        expr = CaseWhen(
            [(col("v") < 0, lit("neg")), (col("v") < 10, lit("small"))],
            lit("big"),
        )
        assert expr.eval({"v": -1}) == "neg"
        assert expr.eval({"v": 5}) == "small"
        assert expr.eval({"v": 50}) == "big"

    def test_no_match_no_default_is_null(self):
        expr = CaseWhen([(col("v") < 0, lit(1))])
        assert expr.eval({"v": 3}) is None

    def test_references(self):
        expr = CaseWhen([(col("a") > 0, col("b"))], col("c"))
        assert expr.references() == {"a", "b", "c"}

    def test_empty_branches_rejected(self):
        from repro.common.errors import AnalysisError

        with pytest.raises(AnalysisError):
            CaseWhen([])

    def test_sql_case_in_projection(self, sql_session):
        rows = sql_session.sql(
            "SELECT CASE WHEN o_orderstatus = 'F' THEN 1 ELSE 0 END AS f "
            "FROM orders LIMIT 5"
        ).collect()
        assert all(r["f"] in (0, 1) for r in rows)

    def test_sql_case_without_else(self, sql_session):
        rows = sql_session.sql(
            "SELECT CASE WHEN o_orderstatus = 'NOPE' THEN 1 END AS x "
            "FROM orders LIMIT 3"
        ).collect()
        assert all(r["x"] is None for r in rows)


class TestExtensionQueries:
    @pytest.mark.parametrize("query", extension_queries(),
                             ids=lambda q: q.name)
    def test_three_forms_agree(self, query, tpch_tables, sql_session):
        mr = query.output(tpch_tables)[0]
        df = query.dataframe(sql_session).collect()[0]["result"] or 0.0
        sql = sql_session.sql(query.sql_text()).collect()[0]["result"] or 0.0
        assert mr == pytest.approx(df)
        assert mr == pytest.approx(sql)

    @pytest.mark.parametrize("query", extension_queries(),
                             ids=lambda q: q.name)
    def test_monoid(self, query, tpch_tables):
        query.validate_monoid(tpch_tables, sample=20)

    @pytest.mark.parametrize("query", extension_queries(),
                             ids=lambda q: q.name)
    def test_provenance_compiler_matches(self, query, tpch_tables):
        compiled = compile_sql(
            query.sql_text(), tpch_tables, query.protected_table,
            domain_sampler=query.sample_domain_record,
        )
        aux = query.build_aux(tpch_tables)
        for record in tpch_tables[query.protected_table][:200]:
            assert compiled.contribution(record) == pytest.approx(
                query.map_record(record, aux)
            )

    @pytest.mark.parametrize("query", extension_queries(),
                             ids=lambda q: q.name)
    def test_runs_under_upa(self, query, tpch_tables):
        session = UPASession(UPAConfig(sample_size=80, seed=2))
        result = session.run(query, tpch_tables, epsilon=0.5)
        assert result.local_sensitivity >= 0

    def test_q12_counts_only_high_priority(self, tpch_tables):
        query = Q12()
        aux = query.build_aux(tpch_tables)
        for order in tpch_tables["orders"][:100]:
            if order["o_orderpriority"] not in ("1-URGENT", "2-HIGH"):
                assert query.map_record(order, aux) == 0.0

    def test_q14_only_promo_parts_contribute(self, tpch_tables):
        query = Q14()
        aux = query.build_aux(tpch_tables)
        promo = aux.promo_partkeys
        for item in tpch_tables["lineitem"][:200]:
            value = query.map_record(item, aux)
            if item["l_partkey"] not in promo and value != 0.0:
                pytest.fail("non-promo part contributed")


class TestAnswerCacheAndCheckpoint:
    def test_answer_cache_returns_identical_result(self, tpch_tables):
        from repro.tpch.workload import query_by_name

        session = UPASession(
            UPAConfig(sample_size=60, seed=1, answer_cache=True)
        )
        query = query_by_name("tpch1")
        first = session.run(query, tpch_tables, epsilon=0.5)
        second = session.run(query, tpch_tables, epsilon=0.5)
        assert second is first  # cached object, no recomputation

    def test_answer_cache_spends_budget_once(self, tpch_tables):
        from repro.dp import PrivacyAccountant
        from repro.tpch.workload import query_by_name

        accountant = PrivacyAccountant(total_epsilon=0.6)
        session = UPASession(
            UPAConfig(sample_size=60, seed=1, answer_cache=True),
            accountant=accountant,
        )
        query = query_by_name("tpch1")
        session.run(query, tpch_tables, epsilon=0.5)
        session.run(query, tpch_tables, epsilon=0.5)  # free
        assert accountant.remaining_epsilon() == pytest.approx(0.1)

    def test_answer_cache_misses_on_neighbour(self, tpch_tables):
        from repro.tpch.workload import query_by_name

        session = UPASession(
            UPAConfig(sample_size=60, seed=1, answer_cache=True)
        )
        query = query_by_name("tpch1")
        first = session.run(query, tpch_tables, epsilon=0.5)
        neighbour = dict(tpch_tables)
        neighbour["lineitem"] = tpch_tables["lineitem"][:-1]
        second = session.run(query, neighbour, epsilon=0.5)
        assert second is not first
        assert second.enforcement.matched_prior  # enforcer still fires

    def test_checkpoint_truncates_lineage(self, ctx):
        rdd = ctx.parallelize(range(20), 4).map(lambda v: v + 1)
        checkpointed = rdd.checkpoint()
        assert checkpointed.dependencies == ()
        assert sorted(checkpointed.collect()) == sorted(rdd.collect())

    def test_checkpoint_preserves_partitioning(self, ctx):
        rdd = ctx.parallelize(range(20), 4)
        assert rdd.checkpoint().num_partitions == 4
