"""Tests for Partition & Sample and for sensitivity inference."""

import random

import numpy as np
import pytest

from repro.common.errors import DPError
from repro.core.inference import (
    InferenceConfig,
    infer_local_sensitivity,
    infer_output_range,
)
from repro.core.query import MapReduceQuery
from repro.core.sampling import (
    partition_and_sample,
    partition_of,
    record_fingerprint,
)


class _IdentityQuery(MapReduceQuery):
    name = "identity"
    protected_table = "vals"
    output_dim = 1

    def map_record(self, record, aux):
        return float(record["v"])

    def zero(self):
        return 0.0

    def combine(self, a, b):
        return a + b

    def finalize(self, agg, aux):
        return np.asarray([agg])

    def sample_domain_record(self, rng, tables):
        return {"v": float(rng.randrange(10_000, 20_000))}


def _tables(n=500):
    return {"vals": [{"v": float(i)} for i in range(n)]}


class TestPartitionAndSample:
    def test_partitions_cover_dataset(self):
        tables = _tables()
        sample = partition_and_sample(
            _IdentityQuery(), tables, 50, random.Random(0)
        )
        merged = sample.partitions[0] + sample.partitions[1]
        assert sorted(r["v"] for r in merged) == sorted(
            r["v"] for r in tables["vals"]
        )

    def test_partition_is_stable_per_record(self):
        record = {"v": 3.0}
        assert partition_of(record) == partition_of(dict(record))

    def test_fingerprint_order_insensitive(self):
        a = {"x": 1, "y": "s"}
        b = {"y": "s", "x": 1}
        assert record_fingerprint(a) == record_fingerprint(b)

    def test_sample_size_respected(self):
        sample = partition_and_sample(
            _IdentityQuery(), _tables(), 64, random.Random(1)
        )
        assert sample.sample_size == 64
        assert len(sample.domain_samples) == 64

    def test_small_dataset_fully_sampled(self):
        sample = partition_and_sample(
            _IdentityQuery(), _tables(10), 1000, random.Random(1)
        )
        assert sample.sample_size == 10
        assert sample.remaining == ([], [])

    def test_sampled_plus_remaining_is_everything(self):
        tables = _tables(200)
        sample = partition_and_sample(
            _IdentityQuery(), tables, 30, random.Random(5)
        )
        reunion = sorted(
            r["v"]
            for r in sample.sampled
            + sample.remaining[0]
            + sample.remaining[1]
        )
        assert reunion == [float(i) for i in range(200)]

    def test_sampled_partitions_consistent(self):
        sample = partition_and_sample(
            _IdentityQuery(), _tables(100), 20, random.Random(2)
        )
        for record, pid in zip(sample.sampled, sample.sampled_partitions):
            assert partition_of(record) == pid

    def test_empty_table_raises(self):
        with pytest.raises(DPError):
            partition_and_sample(
                _IdentityQuery(), {"vals": []}, 10, random.Random(0)
            )

    def test_deterministic_given_rng(self):
        a = partition_and_sample(
            _IdentityQuery(), _tables(), 20, random.Random(9)
        )
        b = partition_and_sample(
            _IdentityQuery(), _tables(), 20, random.Random(9)
        )
        assert a.sampled == b.sampled
        assert a.domain_samples == b.domain_samples

    def test_partitions_roughly_balanced(self):
        sample = partition_and_sample(
            _IdentityQuery(), _tables(2000), 10, random.Random(3)
        )
        sizes = [len(p) for p in sample.partitions]
        assert min(sizes) > 0.35 * sum(sizes)


class TestRangeInference:
    def test_normal_fit_brackets_gaussian_data(self):
        rng = np.random.default_rng(0)
        outputs = rng.normal(100.0, 5.0, size=(1000, 1))
        inferred = infer_output_range(outputs, population=1000)
        assert inferred.lower[0] < 85 < 115 < inferred.upper[0]

    def test_discrete_fallback_exact_for_counts(self):
        outputs = np.array([[9.0], [11.0]] * 500)
        inferred = infer_output_range(outputs, population=100_000)
        assert inferred.lower[0] == 9.0
        assert inferred.upper[0] == 11.0
        assert inferred.used_fallback[0]
        assert inferred.local_sensitivity == 2.0

    def test_fallback_disabled_uses_normal(self):
        outputs = np.array([[9.0], [11.0]] * 500)
        config = InferenceConfig(discrete_fallback=False, envelope=False)
        inferred = infer_output_range(outputs, 100_000, config)
        assert inferred.upper[0] > 11.0  # normal tail extends past samples

    def test_extrapolation_widens_with_population(self):
        rng = np.random.default_rng(1)
        outputs = rng.normal(0.0, 1.0, size=(500, 1))
        config = InferenceConfig(envelope=False)
        small = infer_output_range(outputs, 1_000, config)
        large = infer_output_range(outputs, 1_000_000, config)
        assert large.local_sensitivity > small.local_sensitivity

    def test_paper_percentiles_without_extrapolation(self):
        rng = np.random.default_rng(2)
        outputs = rng.normal(0.0, 1.0, size=(5000, 1))
        config = InferenceConfig(
            extrapolate=False, envelope=False, discrete_fallback=False
        )
        inferred = infer_output_range(outputs, 10**6, config)
        # 1st..99th percentile of a standard normal ~ +-2.326.
        assert inferred.local_sensitivity == pytest.approx(4.65, rel=0.1)

    def test_multidimensional_ranges(self):
        rng = np.random.default_rng(3)
        outputs = np.column_stack(
            [rng.normal(0, 1, 800), rng.normal(50, 10, 800)]
        )
        inferred = infer_output_range(outputs, 800)
        assert inferred.lower.shape == (2,)
        assert inferred.upper[1] > inferred.upper[0]

    def test_clamp(self):
        outputs = np.array([[0.0], [10.0]] * 50)
        inferred = infer_output_range(outputs, 100)
        assert inferred.clamp(np.array([99.0]))[0] == inferred.upper[0]
        assert inferred.clamp(np.array([-99.0]))[0] == inferred.lower[0]

    def test_contains_and_coverage(self):
        outputs = np.array([[0.0], [10.0]] * 50)
        inferred = infer_output_range(outputs, 100)
        assert inferred.contains(np.array([5.0]))
        assert not inferred.contains(np.array([50.0]))
        cover = inferred.coverage(np.array([[5.0], [50.0]]))
        assert cover == 0.5

    def test_max_deviation(self):
        outputs = np.array([[0.0], [10.0]] * 50)
        inferred = infer_output_range(outputs, 100)
        assert inferred.max_deviation(np.array([10.0])) == pytest.approx(10.0)
        assert inferred.max_deviation(np.array([5.0])) == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(DPError):
            infer_output_range(np.empty((0, 1)), 100)

    def test_invalid_percentiles(self):
        with pytest.raises(DPError):
            InferenceConfig(percentile_low=60.0, percentile_high=40.0)


class TestSensitivityEstimator:
    def test_discrete_deltas_exact(self):
        outputs = np.array([[99.0]] * 500 + [[101.0]] * 500)
        est = infer_local_sensitivity(outputs, np.array([100.0]), 10_000)
        assert est == 1.0

    def test_normal_deltas_extrapolate(self):
        rng = np.random.default_rng(4)
        center = np.array([0.0])
        outputs = rng.normal(0, 1, size=(1000, 1))
        est = infer_local_sensitivity(outputs, center, 100_000)
        # expected max |delta| of 100k half-normal draws ~ 4.5
        assert 3.0 < est < 7.0

    def test_envelope_never_below_sampled_max(self):
        outputs = np.array([[0.0]] * 999 + [[1000.0]])
        est = infer_local_sensitivity(
            outputs, np.array([0.0]), 10_000,
            InferenceConfig(discrete_fallback=False),
        )
        assert est >= 1000.0

    def test_vector_deltas_use_l1(self):
        center = np.zeros(2)
        outputs = np.array([[3.0, 4.0]] * 20)
        est = infer_local_sensitivity(outputs, center, 100)
        assert est == pytest.approx(7.0)
