"""Persistent scheduler pool + run_job partition normalization."""

from __future__ import annotations

from repro.common.config import EngineConfig
from repro.engine import EngineContext
from repro.engine.events import JobListener


def _threaded_ctx() -> EngineContext:
    return EngineContext(
        EngineConfig(default_parallelism=4, use_threads=True, max_workers=4)
    )


class TestPersistentPool:
    def test_pool_created_lazily_and_reused_across_jobs(self):
        ctx = _threaded_ctx()
        assert ctx.scheduler._pool is None
        rdd = ctx.parallelize(range(100), 4)
        assert rdd.map(lambda v: v + 1).count() == 100
        pool = ctx.scheduler._pool
        assert pool is not None
        assert sum(rdd.collect()) == sum(range(100))
        assert ctx.scheduler._pool is pool  # same executor, not a new one

    def test_stop_shuts_pool_down_and_is_idempotent(self):
        ctx = _threaded_ctx()
        ctx.parallelize(range(8), 4).collect()
        assert ctx.scheduler._pool is not None
        ctx.stop()
        assert ctx.scheduler._pool is None
        ctx.stop()  # second stop is a no-op

    def test_jobs_after_stop_recreate_the_pool(self):
        ctx = _threaded_ctx()
        ctx.parallelize(range(8), 4).collect()
        ctx.stop()
        assert ctx.parallelize(range(8), 4).map(lambda v: v * 2).count() == 8
        assert ctx.scheduler._pool is not None
        ctx.stop()

    def test_context_manager_stops_on_exit(self):
        with _threaded_ctx() as ctx:
            ctx.parallelize(range(8), 4).collect()
            assert ctx.scheduler._pool is not None
        assert ctx.scheduler._pool is None

    def test_shuffle_nested_job_does_not_deadlock(self):
        """ShuffledRDD tasks materialize their parent via a nested
        run_job; with one shared pool that nested job must run inline
        in the worker (4 workers, 4 outer tasks => a pooled nested job
        would starve)."""
        ctx = _threaded_ctx()
        pairs = ctx.parallelize([(i % 3, 1) for i in range(60)], 4)
        counts = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert counts == {0: 20, 1: 20, 2: 20}
        ctx.stop()

    def test_single_partition_jobs_bypass_the_pool(self):
        ctx = _threaded_ctx()
        assert ctx.parallelize([1, 2, 3], 1).collect() == [1, 2, 3]
        assert ctx.scheduler._pool is None  # never needed a pool


class TestRunJobNormalization:
    def test_generator_partitions_normalized_once(self):
        """run_job iterates `partitions` twice (dispatch + event record);
        a generator argument must still yield every result and an
        accurate num_partitions."""
        ctx = EngineContext(EngineConfig(default_parallelism=4))
        listener = JobListener()
        ctx.install_job_listener(listener)
        rdd = ctx.parallelize(range(40), 4)
        results = ctx.scheduler.run_job(
            rdd, lambda it: sum(1 for _ in it),
            partitions=(p for p in range(rdd.num_partitions)),
        )
        assert sum(results) == 40
        assert len(results) == 4
        event = listener.events()[-1]
        assert event.num_partitions == 4

    def test_generator_partitions_with_threads(self):
        ctx = _threaded_ctx()
        rdd = ctx.parallelize(range(40), 4)
        results = ctx.scheduler.run_job(
            rdd, list, partitions=(p for p in range(4))
        )
        assert sorted(v for chunk in results for v in chunk) == list(range(40))
        ctx.stop()
