"""Tests for the SQL text parser and its planner."""

import datetime

import pytest

from repro.common.errors import AnalysisError, ParseError
from repro.sql import SQLSession
from repro.sql.parser import tokenize


@pytest.fixture
def session():
    sess = SQLSession()
    sess.create_table(
        "emp",
        [
            {"eid": i, "dept": i % 3, "salary": 1000.0 + 100 * i,
             "name": f"emp{i}",
             "hired": datetime.date(2000 + i % 5, 1, 15)}
            for i in range(30)
        ],
    )
    sess.create_table(
        "dept", [{"did": d, "dname": f"d{d}"} for d in range(3)]
    )
    sess.create_table(
        "bonus", [{"beid": i, "amount": 50 * i} for i in range(0, 30, 3)]
    )
    return sess


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a FROM t WHERE a >= 1.5")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "keyword", "ident",
                         "keyword", "ident", "op", "number", "eof"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "'it''s'"

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT ;")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM where")
        assert all(t.kind == "keyword" for t in tokens[:-1])


class TestBasicQueries:
    def test_select_star(self, session):
        rows = session.sql("SELECT * FROM dept").collect()
        assert len(rows) == 3
        assert set(rows[0]) == {"did", "dname"}

    def test_select_columns_and_alias(self, session):
        rows = session.sql(
            "SELECT eid, salary * 2 AS double_pay FROM emp LIMIT 1"
        ).collect()
        assert rows == [{"eid": 0, "double_pay": 2000.0}]

    def test_where_comparison(self, session):
        n = session.sql("SELECT COUNT(*) AS n FROM emp WHERE salary > 3500").scalar()
        assert n == sum(1 for i in range(30) if 1000 + 100 * i > 3500)

    def test_where_and_or_not(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE (dept = 0 OR dept = 1) AND NOT eid = 0"
        ).scalar()
        assert n == sum(1 for i in range(1, 30) if i % 3 in (0, 1))

    def test_between(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE eid BETWEEN 5 AND 7"
        ).scalar()
        assert n == 3

    def test_not_between(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE eid NOT BETWEEN 0 AND 27"
        ).scalar()
        assert n == 2

    def test_in_list(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE eid IN (1, 2, 99)"
        ).scalar()
        assert n == 2

    def test_like(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE name LIKE 'emp1%'"
        ).scalar()
        assert n == 11  # emp1, emp10..emp19

    def test_is_null(self, session):
        session.create_table("nulls", [{"x": None}, {"x": 3}])
        assert session.sql(
            "SELECT COUNT(*) AS n FROM nulls WHERE x IS NULL"
        ).scalar() == 1
        assert session.sql(
            "SELECT COUNT(*) AS n FROM nulls WHERE x IS NOT NULL"
        ).scalar() == 1

    def test_date_literal_and_interval(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE hired < DATE '2003-01-01' - INTERVAL '30' DAY"
        ).scalar()
        assert n == sum(1 for i in range(30) if 2000 + i % 5 <= 2002)

    def test_order_by_and_limit(self, session):
        rows = session.sql(
            "SELECT eid FROM emp ORDER BY eid DESC LIMIT 3"
        ).collect()
        assert [r["eid"] for r in rows] == [29, 28, 27]

    def test_order_by_alias(self, session):
        rows = session.sql(
            "SELECT eid, salary AS pay FROM emp ORDER BY pay ASC LIMIT 1"
        ).collect()
        assert rows[0]["eid"] == 0

    def test_scalar_function(self, session):
        rows = session.sql(
            "SELECT upper(name) AS u FROM emp LIMIT 1"
        ).collect()
        assert rows == [{"u": "EMP0"}]

    def test_trailing_garbage_rejected(self, session):
        with pytest.raises(ParseError):
            session.sql("SELECT * FROM dept extra garbage ,")

    def test_unknown_table(self, session):
        with pytest.raises(AnalysisError):
            session.sql("SELECT * FROM nope")

    def test_unknown_column(self, session):
        with pytest.raises(AnalysisError):
            session.sql("SELECT wat FROM dept")


class TestAggregates:
    def test_global_count(self, session):
        assert session.sql("SELECT COUNT(*) AS n FROM emp").scalar() == 30

    def test_group_by_with_having(self, session):
        rows = session.sql(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS pay FROM emp "
            "GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept"
        ).collect()
        assert len(rows) == 3
        assert all(r["n"] == 10 for r in rows)

    def test_sum_min_max(self, session):
        row = session.sql(
            "SELECT SUM(salary) AS s, MIN(salary) AS lo, MAX(salary) AS hi "
            "FROM emp"
        ).collect()[0]
        assert row["lo"] == 1000.0
        assert row["hi"] == 3900.0
        assert row["s"] == sum(1000.0 + 100 * i for i in range(30))

    def test_count_distinct(self, session):
        assert session.sql(
            "SELECT COUNT(DISTINCT dept) AS n FROM emp"
        ).scalar() == 3

    def test_aggregate_of_expression(self, session):
        value = session.sql(
            "SELECT SUM(salary * 0.1) AS s FROM emp WHERE dept = 0"
        ).scalar()
        expected = sum(
            (1000.0 + 100 * i) * 0.1 for i in range(30) if i % 3 == 0
        )
        assert value == pytest.approx(expected)

    def test_select_star_in_aggregate_rejected(self, session):
        with pytest.raises(AnalysisError):
            session.sql("SELECT * FROM emp GROUP BY dept")

    def test_non_grouped_column_rejected(self, session):
        with pytest.raises(AnalysisError):
            session.sql("SELECT eid, COUNT(*) AS n FROM emp GROUP BY dept")


class TestJoinsAndSubqueries:
    def test_comma_join(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp, dept WHERE dept = did"
        ).scalar()
        assert n == 30

    def test_three_way_join(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp, dept, bonus "
            "WHERE dept = did AND eid = beid"
        ).scalar()
        assert n == 10

    def test_join_with_alias_qualified_columns(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp e, dept d "
            "WHERE e.dept = d.did AND d.did = 1"
        ).scalar()
        assert n == 10

    def test_disconnected_tables_rejected(self, session):
        with pytest.raises(AnalysisError):
            session.sql("SELECT COUNT(*) AS n FROM emp, dept")

    def test_exists(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE EXISTS "
            "(SELECT * FROM bonus WHERE beid = eid AND amount > 100)"
        ).scalar()
        assert n == sum(1 for i in range(0, 30, 3) if 50 * i > 100)

    def test_not_exists(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE NOT EXISTS "
            "(SELECT * FROM bonus WHERE beid = eid)"
        ).scalar()
        assert n == 20

    def test_in_subquery(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE eid IN "
            "(SELECT beid FROM bonus)"
        ).scalar()
        assert n == 10

    def test_not_in_subquery(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp WHERE eid NOT IN "
            "(SELECT beid FROM bonus WHERE amount > 500)"
        ).scalar()
        big_bonus = {i for i in range(0, 30, 3) if 50 * i > 500}
        assert n == 30 - len(big_bonus)

    def test_scalar_subquery(self, session):
        n = session.sql(
            "SELECT COUNT(*) AS n FROM emp "
            "WHERE salary > (SELECT AVG(salary) FROM emp)"
        ).scalar()
        assert n == 15

    def test_correlated_residual_inequality(self, session):
        session.create_table(
            "li",
            [{"ok": 1, "sk": 1}, {"ok": 1, "sk": 2}, {"ok": 2, "sk": 9}],
        )
        n = session.sql(
            "SELECT COUNT(*) AS n FROM li l1 WHERE EXISTS "
            "(SELECT * FROM li l2 WHERE l2.ok = l1.ok AND l2.sk <> l1.sk)"
        ).scalar()
        assert n == 2

    def test_uncorrelated_exists_rejected(self, session):
        with pytest.raises(AnalysisError):
            session.sql(
                "SELECT COUNT(*) AS n FROM emp WHERE EXISTS "
                "(SELECT * FROM bonus WHERE amount > 0)"
            )

    def test_exists_outside_where_rejected(self, session):
        with pytest.raises(ParseError):
            session.sql("SELECT EXISTS (SELECT * FROM dept) FROM emp")
