"""Tests for RANGE ENFORCER (Algorithm 2) and the end-to-end UPASession."""

import random

import numpy as np
import pytest

from repro.common.errors import DPError, PrivacyBudgetExceeded
from repro.core import UPAConfig, UPASession
from repro.core.inference import InferenceConfig, infer_output_range
from repro.core.query import MapReduceQuery
from repro.core.range_enforcer import RangeEnforcer
from repro.dp.budget import PrivacyAccountant
from repro.engine.metrics import MetricsRegistry
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.workload import query_by_name


class _FakeRuntime:
    """Scriptable EnforcerRuntime for unit tests."""

    def __init__(self, partition_outputs, final, removable=10):
        self._outputs = [np.asarray(p, dtype=float) for p in partition_outputs]
        self._final = np.asarray(final, dtype=float)
        self._removable = removable
        self.removals = 0

    def partition_outputs(self):
        return (self._outputs[0], self._outputs[1])

    def final_output(self):
        return self._final

    def remove_two_records(self):
        if self._removable < 2:
            return False
        self._removable -= 2
        self.removals += 2
        # removing records perturbs both partitions' outputs
        self._outputs = [o - 1.0 for o in self._outputs]
        self._final = self._final - 2.0
        return True


def _range(lo, hi):
    return infer_output_range(np.array([[lo], [hi]] * 10), 100)


class TestRangeEnforcer:
    def test_first_submission_registers(self):
        enforcer = RangeEnforcer()
        runtime = _FakeRuntime([[5.0], [7.0]], [12.0])
        result = enforcer.enforce(runtime, _range(0.0, 20.0))
        assert not result.matched_prior
        assert result.records_removed == 0
        assert len(enforcer) == 1

    def test_distinct_queries_do_not_trigger_removal(self):
        enforcer = RangeEnforcer()
        enforcer.enforce(_FakeRuntime([[5.0], [7.0]], [12.0]), _range(0, 20))
        result = enforcer.enforce(
            _FakeRuntime([[50.0], [70.0]], [120.0]), _range(0, 200)
        )
        assert not result.matched_prior

    def test_neighbouring_submission_forces_removals(self):
        enforcer = RangeEnforcer()
        enforcer.enforce(_FakeRuntime([[5.0], [7.0]], [12.0]), _range(0, 20))
        # same first partition output -> looks like a neighbouring dataset
        runtime = _FakeRuntime([[5.0], [8.0]], [13.0])
        result = enforcer.enforce(runtime, _range(0, 20))
        assert result.matched_prior
        assert result.records_removed >= 2

    def test_identical_submission_forces_removals(self):
        enforcer = RangeEnforcer()
        enforcer.enforce(_FakeRuntime([[5.0], [7.0]], [12.0]), _range(0, 20))
        result = enforcer.enforce(
            _FakeRuntime([[5.0], [7.0]], [12.0]), _range(0, 20)
        )
        assert result.matched_prior

    def test_exhausted_removals_raise(self):
        enforcer = RangeEnforcer()
        enforcer.enforce(_FakeRuntime([[5.0], [7.0]], [12.0]), _range(0, 20))
        runtime = _FakeRuntime([[5.0], [7.0]], [12.0], removable=0)
        with pytest.raises(DPError):
            enforcer.enforce(runtime, _range(0, 20))

    def test_out_of_range_output_replaced_with_in_range(self):
        enforcer = RangeEnforcer(rng=random.Random(0))
        runtime = _FakeRuntime([[5.0], [7.0]], [999.0])
        inferred = _range(0.0, 20.0)
        result = enforcer.enforce(runtime, inferred)
        assert result.clamped
        assert inferred.contains(result.output)

    def test_in_range_output_untouched(self):
        enforcer = RangeEnforcer()
        result = enforcer.enforce(
            _FakeRuntime([[5.0], [7.0]], [12.0]), _range(0, 20)
        )
        assert not result.clamped
        assert result.output[0] == 12.0

    def test_reset(self):
        enforcer = RangeEnforcer()
        enforcer.enforce(_FakeRuntime([[1.0], [2.0]], [3.0]), _range(0, 5))
        enforcer.reset()
        assert len(enforcer) == 0


@pytest.fixture(scope="module")
def small_tables():
    return TPCHGenerator(TPCHConfig(scale_rows=3000, seed=13)).generate()


class TestUPASession:
    def test_plain_output_matches_reference(self, small_tables):
        query = query_by_name("tpch6")
        session = UPASession(UPAConfig(sample_size=200, seed=0))
        result = session.run(query, small_tables)
        assert result.plain_output[0] == pytest.approx(
            query.output(small_tables)[0]
        )

    def test_vanilla_matches_reference(self, small_tables):
        query = query_by_name("tpch6")
        session = UPASession()
        output, elapsed = session.run_vanilla(query, small_tables)
        assert output[0] == pytest.approx(query.output(small_tables)[0])
        assert elapsed >= 0

    def test_reuse_and_naive_agree(self, small_tables):
        query = query_by_name("tpch6")
        fast = UPASession(
            UPAConfig(sample_size=50, seed=4, reuse_intermediate=True)
        ).run(query, small_tables)
        slow = UPASession(
            UPAConfig(sample_size=50, seed=4, reuse_intermediate=False)
        ).run(query, small_tables)
        assert np.allclose(fast.removal_outputs, slow.removal_outputs)
        assert fast.local_sensitivity == pytest.approx(slow.local_sensitivity)

    def test_removal_outputs_match_bruteforce_subset(self, small_tables):
        """Every sampled removal output equals f(x - s_i) exactly."""
        query = query_by_name("tpch1")
        session = UPASession(UPAConfig(sample_size=100, seed=7))
        result = session.run(query, small_tables)
        expected = len(small_tables["lineitem"]) - 1
        assert np.all(result.removal_outputs == expected)

    def test_noise_changes_with_seed(self, small_tables):
        query = query_by_name("tpch1")
        a = UPASession(UPAConfig(sample_size=50, seed=1)).run(query, small_tables)
        b = UPASession(UPAConfig(sample_size=50, seed=2)).run(query, small_tables)
        assert a.noisy_scalar() != b.noisy_scalar()

    def test_same_seed_reproducible(self, small_tables):
        query = query_by_name("tpch1")
        a = UPASession(UPAConfig(sample_size=50, seed=5)).run(query, small_tables)
        b = UPASession(UPAConfig(sample_size=50, seed=5)).run(query, small_tables)
        assert a.noisy_scalar() == b.noisy_scalar()

    def test_epsilon_must_be_positive(self, small_tables):
        session = UPASession()
        with pytest.raises(DPError):
            session.run(query_by_name("tpch1"), small_tables, epsilon=0.0)

    def test_budget_accounting(self, small_tables):
        accountant = PrivacyAccountant(total_epsilon=0.15)
        session = UPASession(
            UPAConfig(sample_size=50, seed=0), accountant=accountant
        )
        session.run(query_by_name("tpch1"), small_tables, epsilon=0.1)
        with pytest.raises(PrivacyBudgetExceeded):
            session.run(query_by_name("tpch1"), small_tables, epsilon=0.1)

    def test_smaller_epsilon_noisier(self, small_tables):
        query = query_by_name("tpch6")
        spreads = {}
        for epsilon in (10.0, 0.01):
            outs = []
            for seed in range(8):
                session = UPASession(UPAConfig(sample_size=50, seed=seed))
                outs.append(
                    session.run(query, small_tables, epsilon=epsilon)
                    .noisy_scalar()
                )
            spreads[epsilon] = np.std(outs)
        assert spreads[0.01] > 10 * spreads[10.0]

    def test_repeated_query_detected_as_attack(self, small_tables):
        """The paper's threat scenario: same query, neighbouring input."""
        query = query_by_name("tpch1")
        session = UPASession(UPAConfig(sample_size=60, seed=3))
        first = session.run(query, small_tables, epsilon=0.5)
        assert not first.enforcement.matched_prior

        neighbour_tables = dict(small_tables)
        neighbour_tables["lineitem"] = small_tables["lineitem"][:-1]
        second = session.run(query, neighbour_tables, epsilon=0.5)
        assert second.enforcement.matched_prior
        assert second.enforcement.records_removed >= 2

    def test_enforced_output_always_in_range(self, small_tables):
        query = query_by_name("tpch13")
        session = UPASession(UPAConfig(sample_size=100, seed=1))
        result = session.run(query, small_tables)
        assert result.inferred_range.contains(result.raw_output)

    def test_metrics_capture_shuffle_free_run(self, small_tables):
        query = query_by_name("tpch1")
        session = UPASession(UPAConfig(sample_size=50, seed=2))
        result = session.run(query, small_tables)
        assert result.metrics.get(MetricsRegistry.JOBS) > 0

    def test_validate_queries_flag(self, small_tables):
        session = UPASession(
            UPAConfig(sample_size=30, seed=0, validate_queries=True)
        )
        result = session.run(query_by_name("tpch4"), small_tables)
        assert result.sample_size == 30

    def test_vector_query_end_to_end(self, ml_tables):
        from repro.mining import LinearRegressionQuery

        query = LinearRegressionQuery(dim=3)
        session = UPASession(UPAConfig(sample_size=80, seed=6))
        result = session.run(query, ml_tables, epsilon=1.0)
        assert result.noisy_output.shape == (4,)
        assert result.local_sensitivity > 0

    def test_infer_sensitivity_no_budget_no_registration(self, small_tables):
        accountant = PrivacyAccountant(total_epsilon=0.1)
        session = UPASession(
            UPAConfig(sample_size=40, seed=0), accountant=accountant
        )
        session.infer_sensitivity(query_by_name("tpch1"), small_tables)
        assert accountant.remaining_epsilon() == pytest.approx(0.1)
        assert len(session.enforcer) == 0

    def test_estimated_ls_close_to_truth_for_count(self, small_tables):
        from repro.baselines import exact_local_sensitivity

        query = query_by_name("tpch1")
        session = UPASession(UPAConfig(sample_size=100, seed=0))
        result = session.run(query, small_tables)
        truth = exact_local_sensitivity(
            query, small_tables, addition_samples=100
        )
        assert result.estimated_local_sensitivity == pytest.approx(
            truth.local_sensitivity
        )
