"""Continuous monitoring: TimeSeriesStore, windowed alerts, watch.

Covers the time-series layer end to end:

* ring-buffer mechanics — deterministic ``tick(now=...)``, pairwise
  downsampling that preserves counter rates, rate/slope/delta windows;
* JSONL artifacts — ``stream_to`` crash-safety, round-trips,
  corrupt-line tolerance, ``AlertEngine.replay()`` over an artifact;
* windowed rules — ``BudgetBurnRule`` forecasting exhaustion *before*
  the accountant runs out, ``RateRule``/``TrendRule`` primitives;
* surfaces — golden ``repro watch`` terminal frame, the ``/timeseries``
  + ``/dashboard`` endpoints against a live append loop, HTTP 400 on
  malformed query params;
* the invariant that sampling never changes DP outputs.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.session import UPAConfig, UPASession
from repro.dp.budget import PrivacyAccountant
from repro.engine.metrics import MetricsRegistry
from repro.obs.alerts import AlertEngine, BudgetBurnRule, RateRule, TrendRule
from repro.obs.exporters import labeled_name, render_dashboard, sparkline_svg
from repro.obs.timeseries import (
    COUNTER,
    GAUGE,
    KEY_SERIES,
    TIMESERIES_FORMAT,
    TimeSeriesStore,
    forecast_exhaustion,
    least_squares_slope,
    order_series,
    resample,
)
from repro.obs.watch import budget_forecast, render_watch, spark
from repro.workloads import workload_by_name


def _http_get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.getheader("Content-Type"), resp.read()
    finally:
        conn.close()


def _make_store(**kwargs) -> TimeSeriesStore:
    return TimeSeriesStore(MetricsRegistry(), **kwargs)


def _burn_store(ticks: int = 6, start: float = 100.0) -> TimeSeriesStore:
    """A store whose history shows a steady 0.5 eps/s budget burn."""
    store = _make_store(interval=1.0)
    m = store.metrics
    for i in range(ticks):
        m.incr(MetricsRegistry.RELEASES)
        m.incr(MetricsRegistry.RELEASE_EPSILON, 0.5)
        m.set_gauge(MetricsRegistry.BUDGET_REMAINING, 10.0 - 0.5 * (i + 1))
        store.tick(now=start + i)
    return store


class TestStoreMechanics:
    def test_tick_samples_counters_and_gauges(self):
        store = _make_store()
        store.metrics.incr("jobs_run", 3)
        store.metrics.set_gauge("depth", 7.5)
        store.tick(now=10.0)
        store.metrics.incr("jobs_run", 2)
        store.tick(now=11.0)
        assert store.kind("jobs_run") == COUNTER
        assert store.kind("depth") == GAUGE
        assert store.points("jobs_run") == [(10.0, 3.0), (11.0, 5.0)]
        assert store.latest("depth") == 7.5
        assert store.tick_times() == [10.0, 11.0]
        assert store.last_tick == 11.0

    def test_histogram_summaries_become_series(self):
        store = _make_store()
        store.metrics.observe("task_seconds", 1.0)
        store.metrics.observe("task_seconds", 3.0)
        store.tick(now=1.0)
        assert store.kind("task_seconds.count") == COUNTER
        assert store.kind("task_seconds.mean") == GAUGE
        assert store.latest("task_seconds.mean") == pytest.approx(2.0)

    def test_tick_if_due_is_rate_limited(self):
        store = _make_store(interval=5.0)
        assert store.tick_if_due(now=100.0)
        assert not store.tick_if_due(now=102.0)  # < interval later
        assert store.tick_if_due(now=105.0)
        assert len(store.tick_times()) == 2

    def test_downsampling_preserves_counter_rate(self):
        store = _make_store(max_points=8)
        for i in range(64):
            store.metrics.incr("jobs_run", 2)
            store.tick(now=float(i))
        points = store.points("jobs_run")
        assert len(points) <= 8
        # pairwise compaction keeps cumulative values: the overall
        # rate over the retained window is still exactly 2/s.
        assert store.rate("jobs_run") == pytest.approx(2.0)
        # and the series still spans to the newest sample
        assert points[-1] == (63.0, 128.0)

    def test_downsampling_averages_gauges(self):
        store = _make_store(max_points=8)
        for i in range(64):
            store.metrics.set_gauge("depth", float(i))
            store.tick(now=float(i))
        points = store.points("depth")
        assert len(points) <= 8
        values = [v for _, v in points]
        assert values == sorted(values)  # monotone survives averaging

    def test_rate_slope_delta_windows(self):
        store = _make_store()
        for i in range(10):
            store.metrics.incr("jobs_run")
            store.metrics.set_gauge("depth", 2.0 * i)
            store.tick(now=float(i))
        assert store.rate("jobs_run") == pytest.approx(1.0)
        assert store.rate("jobs_run", window=3.0, now=9.0) == pytest.approx(1.0)
        assert store.slope("depth") == pytest.approx(2.0)
        # window reads (now - window, now]: ticks 6..9, delta 9 - 6
        assert store.delta("jobs_run", window=4.0, now=9.0) == pytest.approx(3.0)
        assert store.rate("missing") is None

    def test_counter_rate_clamps_resets_to_zero(self):
        store = _make_store()
        store.record("c", COUNTER, 100.0, now=1.0)
        store.record("c", COUNTER, 5.0, now=2.0)  # process restart
        assert store.rate("c") == 0.0

    def test_resample_last_value_wins(self):
        points = [(0.0, 1.0), (0.4, 2.0), (1.2, 3.0), (2.9, 4.0)]
        assert resample(points, 1.0) == [(0.4, 2.0), (1.2, 3.0), (2.9, 4.0)]

    def test_least_squares_slope(self):
        assert least_squares_slope([(0.0, 0.0), (1.0, 3.0),
                                    (2.0, 6.0)]) == pytest.approx(3.0)
        assert least_squares_slope([(1.0, 1.0)]) is None

    def test_order_series_leads_with_key_series(self):
        names = ["zzz", "tasks_run", labeled_name("worker_rss_kb", worker="9"),
                 MetricsRegistry.RELEASES, "aaa"]
        ordered = order_series(names)
        assert ordered[0] == MetricsRegistry.RELEASES
        assert ordered.index("worker_rss_kb#worker=9") < ordered.index("aaa")
        assert set(ordered) == set(names)
        assert MetricsRegistry.RELEASES in KEY_SERIES

    def test_to_payload_filters_and_resamples(self):
        store = _burn_store()
        payload = store.to_payload(series=[MetricsRegistry.RELEASES],
                                   step=2.0)
        assert payload["format"] == TIMESERIES_FORMAT
        assert list(payload["series"]) == [MetricsRegistry.RELEASES]
        entry = payload["series"][MetricsRegistry.RELEASES]
        assert entry["kind"] == COUNTER
        assert entry["latest"] == 6.0
        assert entry["rate_per_second"] == pytest.approx(1.0)

    def test_sampler_thread_lifecycle(self):
        store = _make_store(interval=0.01)
        store.metrics.incr("jobs_run")
        assert not store.running
        store.start()
        assert store.running
        deadline = time.time() + 5.0
        while not store.tick_times() and time.time() < deadline:
            time.sleep(0.01)
        store.stop()
        assert not store.running
        assert store.tick_times()

    def test_listener_exceptions_are_contained(self):
        store = _make_store()

        def bad_listener(s, now):
            raise RuntimeError("boom")

        store.add_listener(bad_listener)
        with pytest.warns(RuntimeWarning):
            store.tick(now=1.0)
        assert store.tick_times() == [1.0]


class TestJsonlArtifacts:
    def test_stream_to_writes_header_then_ticks(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        store = _burn_store(ticks=0)
        store.stream_to(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1  # header lands immediately (crash-safe)
        assert json.loads(lines[0])["format"] == TIMESERIES_FORMAT
        store.metrics.incr(MetricsRegistry.RELEASES)
        store.tick(now=50.0)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        row = json.loads(lines[1])
        assert row["t"] == 50.0
        assert row["counters"][MetricsRegistry.RELEASES] == 1.0

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        store = _burn_store()
        assert store.write_jsonl(str(path)) == 6
        back = TimeSeriesStore.read_jsonl(str(path))
        assert back.metrics is None
        assert back.tick_times() == store.tick_times()
        for name in store.names():
            assert back.points(name) == store.points(name)
            assert back.kind(name) == store.kind(name)

    def test_read_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        store = _burn_store(ticks=3)
        store.write_jsonl(str(path))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": 103.0, "counters": {"release.co')  # torn write
        with pytest.warns(RuntimeWarning):
            back = TimeSeriesStore.read_jsonl(str(path))
        assert len(back.tick_times()) == 3

    def test_read_rejects_foreign_artifacts(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"format": "upa-ledger/1"}\n')
        with pytest.raises(ValueError):
            TimeSeriesStore.read_jsonl(str(path))

    def test_read_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            TimeSeriesStore.read_jsonl(str(path))


class TestForecast:
    def test_forecast_from_burn_history(self):
        store = _burn_store()
        forecast = forecast_exhaustion(store)
        assert forecast is not None
        assert forecast["epsilon_per_second"] == pytest.approx(0.5)
        assert forecast["remaining_epsilon"] == pytest.approx(7.0)
        assert forecast["seconds_to_exhaustion"] == pytest.approx(14.0)
        assert forecast["releases_to_exhaustion"] == pytest.approx(14.0)

    def test_no_forecast_without_budget_series(self):
        store = _make_store()
        store.metrics.incr(MetricsRegistry.RELEASES)
        store.tick(now=1.0)
        store.tick(now=2.0)
        assert forecast_exhaustion(store) is None

    def test_payload_forecast_matches_store_forecast(self):
        store = _burn_store()
        payload = store.to_payload()
        via_payload = budget_forecast(payload)
        via_store = forecast_exhaustion(store)
        assert via_payload is not None
        assert via_payload["seconds_to_exhaustion"] == pytest.approx(
            via_store["seconds_to_exhaustion"]
        )


class TestWindowedRules:
    def test_budget_burn_fires_before_exhaustion(self):
        store = _burn_store()
        rule = BudgetBurnRule(min_seconds_remaining=300.0)
        alert = rule.on_window(store, now=store.last_tick)
        assert alert is not None
        assert alert.rule == "budget-burn"
        # fired while 7 of 10 epsilon still remain — before exhaustion
        assert alert.context["remaining_epsilon"] == pytest.approx(7.0)
        assert alert.context["forecast_seconds_to_exhaustion"] == \
            pytest.approx(14.0)
        assert alert.context["metric"] == MetricsRegistry.RELEASE_EPSILON

    def test_budget_burn_quiet_when_slow(self):
        store = _make_store()
        m = store.metrics
        for i in range(4):
            m.incr(MetricsRegistry.RELEASE_EPSILON, 0.001)
            m.set_gauge(MetricsRegistry.BUDGET_REMAINING, 10.0)
            store.tick(now=float(i))
        rule = BudgetBurnRule(min_seconds_remaining=60.0)
        assert rule.on_window(store, now=store.last_tick) is None

    def test_rate_rule_fires_on_clamp_spike(self):
        store = _make_store()
        for i in range(5):
            store.metrics.incr(MetricsRegistry.RELEASE_CLAMPS, 3)
            store.tick(now=float(i))
        rule = RateRule(metric=MetricsRegistry.RELEASE_CLAMPS,
                        max_rate_per_second=1.0, window_seconds=60.0,
                        min_points=3, name="clamp-spike")
        alert = rule.on_window(store, now=store.last_tick)
        assert alert is not None
        assert alert.context["rate_per_second"] == pytest.approx(3.0)

    def test_rate_rule_matches_worker_labelled_series(self):
        store = _make_store()
        hot = labeled_name("io_bytes", worker="7")
        cold = labeled_name("io_bytes", worker="8")
        for i in range(4):
            store.record(hot, COUNTER, 100.0 * i, now=float(i))
            store.record(cold, COUNTER, 1.0 * i, now=float(i))
        rule = RateRule(metric="io_bytes", max_rate_per_second=50.0,
                        min_points=3)
        alert = rule.on_window(store, now=3.0)
        assert alert is not None
        assert alert.context["series"] == hot

    def test_trend_rule_fires_on_rss_growth(self):
        store = _make_store()
        series = labeled_name("worker_rss_kb", worker="42")
        for i in range(6):
            store.record(series, GAUGE, 10_000.0 + 2048.0 * i, now=float(i))
        rule = TrendRule(metric="worker_rss_kb",
                         max_slope_per_second=1024.0, window_seconds=120.0,
                         min_points=5, name="worker-rss-growth")
        alert = rule.on_window(store, now=5.0)
        assert alert is not None
        assert alert.context["slope_per_second"] == pytest.approx(2048.0)

    def test_trend_rule_quiet_on_flat_series(self):
        store = _make_store()
        for i in range(6):
            store.record("worker_rss_kb", GAUGE, 10_000.0, now=float(i))
        rule = TrendRule(metric="worker_rss_kb",
                         max_slope_per_second=1024.0, min_points=5)
        assert rule.on_window(store, now=5.0) is None


class TestAlertEngineWindows:
    def test_attach_timeseries_evaluates_on_tick(self):
        store = _burn_store(ticks=0)
        engine = AlertEngine()
        engine.attach_timeseries(store)
        m = store.metrics
        for i in range(6):
            m.incr(MetricsRegistry.RELEASES)
            m.incr(MetricsRegistry.RELEASE_EPSILON, 0.5)
            m.set_gauge(MetricsRegistry.BUDGET_REMAINING,
                        10.0 - 0.5 * (i + 1))
            store.tick(now=100.0 + i)
        rules = [a.rule for a in engine.alerts()]
        assert "budget-burn" in rules

    def test_window_firings_dedupe_across_ticks(self):
        store = _burn_store()
        engine = AlertEngine()
        for t in store.tick_times():
            engine.observe_window(store, now=t)
            engine.observe_window(store, now=t)
        fired = [a for a in engine.alerts() if a.rule == "budget-burn"]
        assert len(fired) == 1  # message numbers churn; condition key dedupes

    def test_replay_timeseries_artifact(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        _burn_store().write_jsonl(str(path))
        store = TimeSeriesStore.read_jsonl(str(path))
        engine = AlertEngine()
        engine.replay(store)
        rules = [a.rule for a in engine.alerts()]
        assert "budget-burn" in rules
        assert engine.degraded

    def test_replay_ledger_still_works(self):
        from repro.obs.ledger import PrivacyLedger, make_entry

        ledger = PrivacyLedger()
        ledger.append(make_entry(
            sequence=1, query="q", epsilon_charged=0.5, delta=0.0,
            mechanism="laplace", sample_size=10, mean=[0.0], std=[1.0],
            lower=[0.0], upper=[1.0], local_sensitivity=1.0,
            estimated_local_sensitivity=1.0, clamped=True,
            matched_prior=False, records_removed=3,
            accountant_remaining_epsilon=None, cache_hit=False,
        ))
        engine = AlertEngine()
        engine.replay(ledger)  # dispatch must keep the ledger path


class TestSessionWiring:
    def _run_session(self, *, timeseries: bool, accountant=None):
        workload = workload_by_name("tpch6")
        tables = workload.make_tables(1200, 0)
        protected = workload.query.protected_table
        held = tables[protected][1000:]
        del tables[protected][1000:]
        session = UPASession(UPAConfig(sample_size=200, seed=7),
                             accountant=accountant)
        if timeseries:
            session.attach_timeseries()
        result = session.run(workload.query, tables, epsilon=0.4)
        result = session.append(held, epsilon=0.4)
        return session, result

    def test_release_updates_store_and_rules(self):
        accountant = PrivacyAccountant(total_epsilon=100.0)
        session, _ = self._run_session(timeseries=True,
                                       accountant=accountant)
        store = session.timeseries
        assert store is not None
        # one deterministic tick per release (run + append)
        assert len(store.tick_times()) == 2
        assert store.latest(MetricsRegistry.RELEASES) == 2.0
        assert store.latest(MetricsRegistry.BUDGET_REMAINING) == \
            pytest.approx(accountant.remaining_epsilon())

    def test_budget_burn_forecast_fires_before_accountant_exhaustion(self):
        # acceptance: appends charge 0.4 eps each within milliseconds,
        # so the windowed forecast sees exhaustion seconds away while
        # plenty of budget actually remains.
        accountant = PrivacyAccountant(total_epsilon=100.0)
        session, _ = self._run_session(timeseries=True,
                                       accountant=accountant)
        fired = [a.rule for a in session.alert_engine.alerts()]
        assert "budget-burn" in fired
        assert accountant.remaining_epsilon() > 0  # not exhausted

    def test_sampling_keeps_dp_outputs_bitwise_identical(self):
        _, plain = self._run_session(timeseries=False)
        _, sampled = self._run_session(timeseries=True)
        assert list(plain.noisy_output) == list(sampled.noisy_output)
        assert plain.local_sensitivity == sampled.local_sensitivity

    def test_attach_timeseries_idempotent(self):
        session = UPASession(UPAConfig(sample_size=10, seed=0))
        store = session.attach_timeseries()
        assert session.attach_timeseries() is store
        assert session.engine.timeseries is store
        session.engine.stop()


GOLDEN_FRAME = """\
repro watch · golden.jsonl · 6 sample(s) · 4 series · health: degraded

series                           | latest | rate/s | trend        | kind
---------------------------------+--------+--------+--------------+--------
release.count                    | 6      | 1      | ▁▂▄▅▇█       | counter
release.epsilon_charged          | 3      | 0.5    | ▁▂▄▅▇█       | counter
session.budget_remaining_epsilon | 7      | -0.5   | █▇▅▄▂▁       | gauge
release.local_sensitivity        | 5      | 0.2    | ▁█▁█▁█       | gauge

budget: exhaustion forecast in ~14s (~14 release(s)) at 0.5 eps/s · remaining epsilon 7
alerts (1 fired):
  CRITICAL budget-burn: budget burn-rate: exhaustion forecast in ~18s, ~18 release(s) at the trailing charge rate (0.5 eps/s over 300s, remaining epsilon 9)
"""


class TestWatchRendering:
    def _golden_artifact(self, tmp_path) -> str:
        path = tmp_path / "golden.jsonl"
        rows = [{"format": TIMESERIES_FORMAT, "interval": 1.0,
                 "max_points": 512, "workload": "tpch6"}]
        for i in range(6):
            rows.append({
                "t": 100.0 + i,
                "counters": {
                    "release.count": float(i + 1),
                    "release.epsilon_charged": 0.5 * (i + 1),
                },
                "gauges": {
                    "session.budget_remaining_epsilon":
                        10.0 - 0.5 * (i + 1),
                    "release.local_sensitivity": 4.0 + i % 2,
                },
            })
        with open(path, "w", encoding="utf-8") as fh:
            for obj in rows:
                fh.write(json.dumps(obj, sort_keys=True) + "\n")
        return str(path)

    def test_golden_frame_from_synthetic_artifact(self, tmp_path):
        store = TimeSeriesStore.read_jsonl(self._golden_artifact(tmp_path))
        engine = AlertEngine()
        engine.replay(store)
        fired = engine.to_dicts()
        frame = render_watch(
            store.to_payload(),
            {"status": "degraded" if fired else "ok", "alerts": fired},
            source="golden.jsonl", spark_width=12,
        )

        def normalize(text: str) -> str:
            # golden modulo column padding: format_table right-pads
            # cells, and editors strip trailing whitespace in literals.
            return "\n".join(line.rstrip() for line in text.splitlines())

        assert normalize(frame) == normalize(GOLDEN_FRAME)

    def test_spark_downsamples_and_pads(self):
        assert spark([], width=4) == "    "
        assert spark([1.0], width=4) == "▁   "
        assert spark([0.0, 7.0], width=4) == "▁█  "
        long = spark(list(range(100)), width=10)
        assert len(long) == 10
        assert long[0] == "▁" and long[-1] == "█"

    def test_render_watch_caps_rows_with_explicit_footer(self):
        payload = {"ticks": 1, "series": {
            f"s{i:02d}": {"kind": "gauge", "points": [[0.0, 1.0]],
                          "latest": 1.0}
            for i in range(20)
        }}
        frame = render_watch(payload, max_rows=5)
        assert "... 15 more series" in frame

    def test_render_watch_series_selection(self):
        payload = {"ticks": 1, "series": {
            "a": {"kind": "gauge", "points": [[0.0, 1.0]], "latest": 1.0},
            "b": {"kind": "gauge", "points": [[0.0, 2.0]], "latest": 2.0},
        }}
        frame = render_watch(payload, series=["b"])
        lines = frame.splitlines()
        assert any(line.startswith("b ") for line in lines)
        assert not any(line.startswith("a ") for line in lines)


class TestDashboard:
    def test_render_dashboard_contents(self):
        store = _burn_store()
        alerts = [{"severity": "warning", "rule": "budget-burn",
                   "message": "forecast"}]
        html = render_dashboard(store, alerts=alerts, refresh=3.0)
        assert "<!DOCTYPE html>" in html
        assert '<meta http-equiv="refresh" content="3">' in html
        assert "warning · budget-burn" in html
        assert "exhaustion forecast" in html
        assert "<svg" in html and "polyline" in html
        assert "prefers-color-scheme: dark" in html
        assert MetricsRegistry.RELEASES in html

    def test_dashboard_caps_cards_with_explicit_footer(self):
        store = _make_store()
        for i in range(60):
            store.record(f"series_{i:02d}", GAUGE, 1.0, now=1.0)
        html = render_dashboard(store, max_cards=10)
        assert "50 more series not shown" in html

    def test_sparkline_svg_shapes(self):
        svg = sparkline_svg([(0.0, 1.0), (1.0, 5.0), (2.0, 3.0)])
        assert svg.startswith("<svg")
        assert "polyline" in svg
        assert sparkline_svg([]) == ""


class TestServerEndpoints:
    def _serve_session(self):
        workload = workload_by_name("tpch6")
        tables = workload.make_tables(1500, 0)
        protected = workload.query.protected_table
        held = tables[protected][1000:]
        del tables[protected][1000:]
        from repro.obs.ledger import PrivacyLedger

        session = UPASession(
            UPAConfig(sample_size=200, seed=1),
            accountant=PrivacyAccountant(total_epsilon=50.0),
            ledger=PrivacyLedger(),
        )
        server = session.serve(port=0, timeseries_interval=0.01)
        return session, server, workload, tables, held

    def test_live_append_loop_round_trip(self):
        session, server, workload, tables, held = self._serve_session()
        try:
            session.run(workload.query, tables, epsilon=0.3)

            errors = []

            def append_loop():
                try:
                    for step in range(4):
                        chunk = held[step * 125:(step + 1) * 125]
                        session.append(chunk, epsilon=0.3)
                except Exception as exc:  # pragma: no cover - debug aid
                    errors.append(exc)

            thread = threading.Thread(target=append_loop)
            thread.start()
            saw_payload = None
            while thread.is_alive():
                status, ctype, body = _http_get(server.port, "/timeseries")
                assert status == 200
                assert "application/json" in ctype
                saw_payload = json.loads(body)
            thread.join()
            assert not errors
            status, _, body = _http_get(server.port, "/timeseries")
            payload = json.loads(body)
            assert saw_payload is not None
            assert payload["format"] == TIMESERIES_FORMAT
            series = payload["series"][MetricsRegistry.RELEASES]
            assert series["latest"] == 5.0  # run + 4 appends
            status, ctype, body = _http_get(server.port, "/dashboard")
            assert status == 200
            assert "text/html" in ctype
            assert b"<svg" in body
            # the windowed budget-burn forecast fired mid-loop
            status, _, body = _http_get(server.port, "/healthz")
            health = json.loads(body)
            assert any(a["rule"] == "budget-burn"
                       for a in health.get("alerts", []))
        finally:
            session.engine.stop()

    def test_timeseries_query_params(self):
        session, server, workload, tables, _ = self._serve_session()
        try:
            session.run(workload.query, tables, epsilon=0.3)
            name = MetricsRegistry.RELEASES
            status, _, body = _http_get(
                server.port, f"/timeseries?series={name}&step=0.5")
            assert status == 200
            payload = json.loads(body)
            assert list(payload["series"]) == [name]
        finally:
            session.engine.stop()

    def test_malformed_params_return_400_json(self):
        session, server, workload, tables, _ = self._serve_session()
        try:
            session.run(workload.query, tables, epsilon=0.3)
            for path in ("/timeseries?since=abc", "/timeseries?step=-1",
                         "/timeseries?window=nan", "/dashboard?refresh=-2",
                         "/ledger?n=xyz", "/ledger?since=1.5"):
                status, ctype, body = _http_get(server.port, path)
                assert status == 400, path
                assert "application/json" in ctype
                assert "error" in json.loads(body), path
        finally:
            session.engine.stop()

    def test_scrape_drives_tick_when_idle(self):
        # satellite: an idle-but-serving session must not go stale —
        # the scrape itself advances the series between releases.
        session, server, workload, tables, _ = self._serve_session()
        try:
            session.run(workload.query, tables, epsilon=0.3)
            before = len(session.timeseries.tick_times())
            time.sleep(0.05)  # > timeseries_interval
            status, _, _ = _http_get(server.port, "/healthz")
            assert status in (200, 503)
            assert len(session.timeseries.tick_times()) > before
        finally:
            session.engine.stop()

    def test_artifact_mode_store_never_ticked_by_scrapes(self, tmp_path):
        from repro.obs.server import ObservabilityServer

        path = tmp_path / "ts.jsonl"
        _burn_store(ticks=3).write_jsonl(str(path))
        store = TimeSeriesStore.read_jsonl(str(path))
        server = ObservabilityServer(timeseries=store).start()
        try:
            status, _, body = _http_get(server.port, "/timeseries")
            assert status == 200
            assert json.loads(body)["ticks"] == 3
            _http_get(server.port, "/healthz")
            assert len(store.tick_times()) == 3  # replay stays as recorded
        finally:
            server.stop()


class TestReportTrends:
    def test_report_renders_trend_table(self, tmp_path):
        from repro.obs.report import ObservedRun

        path = tmp_path / "ts.jsonl"
        _burn_store().write_jsonl(str(path))
        observed = ObservedRun.from_artifacts(timeseries_path=str(path))
        trends = observed.timeseries_trends()
        assert trends
        by_name = {t["series"]: t for t in trends}
        releases = by_name[MetricsRegistry.RELEASES]
        assert releases["kind"] == COUNTER
        assert releases["per_second"] == pytest.approx(1.0)
        text = observed.render_text()
        assert "time-series trends:" in text
        payload = json.loads(observed.render_json())
        assert payload["timeseries"]["ticks"] == 6

    def test_cli_report_trend_includes_replayed_alerts(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        path = tmp_path / "ts.jsonl"
        _burn_store().write_jsonl(str(path))
        assert main(["report", "--timeseries", str(path), "--trend"]) == 0
        out = capsys.readouterr().out
        assert "time-series trends:" in out
        assert "budget-burn" in out

    def test_cli_watch_replays_artifact(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ts.jsonl"
        _burn_store().write_jsonl(str(path))
        assert main(["watch", "--timeseries", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro watch ·" in out
        assert "health: degraded" in out
        assert "budget-burn" in out

    def test_cli_watch_requires_exactly_one_source(self, capsys):
        from repro.cli import main

        assert main(["watch"]) == 2
        assert main(["watch", "--url", "http://x", "--timeseries",
                     "y"]) == 2
