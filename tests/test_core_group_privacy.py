"""Tests for the group-privacy extension (paper section VI-E)."""

import numpy as np
import pytest

from repro.common.errors import DPError
from repro.core.group_privacy import (
    group_epsilon_from_individual,
    run_group_private_query,
    sample_group_neighbour_outputs,
)
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.workload import query_by_name


@pytest.fixture(scope="module")
def tables():
    return TPCHGenerator(TPCHConfig(scale_rows=2000, seed=21)).generate()


class TestGroupNeighbourSampling:
    def test_count_query_group_removal_exact(self, tables):
        query = query_by_name("tpch1")
        total = len(tables["lineitem"])
        for k in (1, 3, 10):
            outputs = sample_group_neighbour_outputs(
                query, tables, group_size=k, num_groups=50,
                sample_size=200, seed=0,
            )
            assert np.all(outputs == total - k), k

    def test_shape(self, tables):
        outputs = sample_group_neighbour_outputs(
            query_by_name("tpch6"), tables, group_size=2, num_groups=37,
            sample_size=100,
        )
        assert outputs.shape == (37, 1)

    def test_invalid_group_size(self, tables):
        query = query_by_name("tpch1")
        with pytest.raises(DPError):
            sample_group_neighbour_outputs(query, tables, group_size=0)
        with pytest.raises(DPError):
            sample_group_neighbour_outputs(
                query, tables, group_size=300, sample_size=100
            )


class TestGroupPrivateQueries:
    def test_count_sensitivity_scales_with_k(self, tables):
        query = query_by_name("tpch1")
        results = {
            k: run_group_private_query(
                query, tables, epsilon=1.0, group_size=k,
                num_groups=100, sample_size=200, seed=1,
            )
            for k in (1, 5)
        }
        # counting query: removing k records changes the count by exactly k
        assert results[1].group_sensitivity == pytest.approx(1.0)
        assert results[5].group_sensitivity == pytest.approx(5.0)

    def test_group_sensitivity_monotone_in_k(self, tables):
        query = query_by_name("tpch6")
        small = run_group_private_query(
            query, tables, 1.0, group_size=1, num_groups=150,
            sample_size=300, seed=2,
        )
        large = run_group_private_query(
            query, tables, 1.0, group_size=8, num_groups=150,
            sample_size=300, seed=2,
        )
        assert large.group_sensitivity >= small.group_sensitivity

    def test_sampled_group_range_at_most_naive_bound(self, tables):
        """Sampled group sensitivity should not exceed k * individual
        (influences of a sampled group add at most linearly)."""
        query = query_by_name("tpch6")
        result = run_group_private_query(
            query, tables, 1.0, group_size=4, num_groups=200,
            sample_size=300, seed=3,
        )
        assert result.group_sensitivity <= result.naive_sensitivity * 1.5

    def test_release_in_range(self, tables):
        query = query_by_name("tpch13")
        result = run_group_private_query(
            query, tables, epsilon=5.0, group_size=2, num_groups=100,
            sample_size=200, seed=4,
        )
        assert result.inferred_range.contains(
            result.inferred_range.clamp(result.plain_output)
        )
        assert result.noisy_output.shape == (1,)

    def test_epsilon_validation(self, tables):
        with pytest.raises(DPError):
            run_group_private_query(
                query_by_name("tpch1"), tables, epsilon=0.0, group_size=2
            )

    def test_composition_helper(self):
        assert group_epsilon_from_individual(0.1, 5) == pytest.approx(0.5)
        with pytest.raises(DPError):
            group_epsilon_from_individual(0.1, 0)
