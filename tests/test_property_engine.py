"""Property-based tests: engine operators match Python reference semantics.

These are the "commutativity/associativity" guarantees the UPA paper
builds on: whatever the partitioning, shuffle order, or thread
interleaving, the engine must compute the same function of the input
multiset as a straight-line Python reference.
"""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import EngineConfig
from repro.engine import EngineContext

SMALL_INTS = st.lists(st.integers(-50, 50), max_size=60)
PARTS = st.integers(1, 7)
PAIRS = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-20, 20)), max_size=60
)


def make_ctx(threads: bool = False) -> EngineContext:
    return EngineContext(EngineConfig(use_threads=threads, max_workers=3))


class TestReferenceSemantics:
    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_map_matches_builtin(self, data, parts):
        ctx = make_ctx()
        out = ctx.parallelize(data, parts).map(lambda v: v * 2 + 1).collect()
        assert out == [v * 2 + 1 for v in data]

    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_filter_matches_builtin(self, data, parts):
        ctx = make_ctx()
        out = ctx.parallelize(data, parts).filter(lambda v: v % 3 == 1).collect()
        assert out == [v for v in data if v % 3 == 1]

    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_sum_count_invariant_to_partitioning(self, data, parts):
        ctx = make_ctx()
        rdd = ctx.parallelize(data, parts)
        assert rdd.sum() == sum(data)
        assert rdd.count() == len(data)

    @given(data=st.lists(st.integers(-50, 50), min_size=1, max_size=60),
           parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_reduce_min_max(self, data, parts):
        ctx = make_ctx()
        rdd = ctx.parallelize(data, parts)
        assert rdd.min() == min(data)
        assert rdd.max() == max(data)

    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_distinct_matches_set(self, data, parts):
        ctx = make_ctx()
        out = ctx.parallelize(data, parts).distinct().collect()
        assert sorted(out) == sorted(set(data))

    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_sort_by_matches_sorted(self, data, parts):
        ctx = make_ctx()
        out = ctx.parallelize(data, parts).sort_by(lambda v: v).collect()
        assert out == sorted(data)

    @given(data=SMALL_INTS, parts=PARTS, n=st.integers(0, 70))
    @settings(max_examples=40, deadline=None)
    def test_take_is_prefix(self, data, parts, n):
        ctx = make_ctx()
        assert ctx.parallelize(data, parts).take(n) == data[: n]

    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_count_by_value_matches_counter(self, data, parts):
        ctx = make_ctx()
        out = ctx.parallelize(data, parts).count_by_value()
        assert out == dict(Counter(data))


class TestKeyValueSemantics:
    @given(pairs=PAIRS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_reduce_by_key_matches_reference(self, pairs, parts):
        ctx = make_ctx()
        out = dict(
            ctx.parallelize(pairs, parts)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        expected = defaultdict(int)
        for k, v in pairs:
            expected[k] += v
        assert out == dict(expected)

    @given(pairs=PAIRS, parts=PARTS)
    @settings(max_examples=40, deadline=None)
    def test_group_by_key_matches_reference(self, pairs, parts):
        ctx = make_ctx()
        out = {
            k: sorted(v)
            for k, v in ctx.parallelize(pairs, parts).group_by_key().collect()
        }
        expected = defaultdict(list)
        for k, v in pairs:
            expected[k].append(v)
        assert out == {k: sorted(v) for k, v in expected.items()}

    @given(left=PAIRS, right=PAIRS, parts=PARTS)
    @settings(max_examples=30, deadline=None)
    def test_join_matches_reference(self, left, right, parts):
        ctx = make_ctx()
        out = sorted(
            ctx.parallelize(left, parts)
            .join(ctx.parallelize(right, parts))
            .collect()
        )
        expected = sorted(
            (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
        )
        assert out == expected

    @given(left=PAIRS, right=PAIRS)
    @settings(max_examples=30, deadline=None)
    def test_semi_anti_partition_left(self, left, right):
        ctx = make_ctx()
        left_rdd = ctx.parallelize(left, 3)
        right_rdd = ctx.parallelize(right, 3)
        semi = sorted(left_rdd.semi_join(right_rdd).collect())
        anti = sorted(left_rdd.anti_join(right_rdd).collect())
        assert sorted(semi + anti) == sorted(left)
        right_keys = {k for k, _v in right}
        assert all(k in right_keys for k, _v in semi)
        assert all(k not in right_keys for k, _v in anti)

    @given(pairs=PAIRS, parts=PARTS)
    @settings(max_examples=25, deadline=None)
    def test_threaded_equals_sequential(self, pairs, parts):
        seq = dict(
            make_ctx(False)
            .parallelize(pairs, parts)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        thr = dict(
            make_ctx(True)
            .parallelize(pairs, parts)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert seq == thr
