"""Tests for CSV persistence and whole-system behaviours:
fault injection through UPA, shared enforcer across sessions,
parser precedence properties."""

import datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import EngineConfig
from repro.core import UPAConfig, UPASession
from repro.core.range_enforcer import RangeEnforcer
from repro.engine import EngineContext, FaultInjector
from repro.sql import SQLSession
from repro.tpch.loader import load_table, load_tables, save_table, save_tables
from repro.tpch.workload import query_by_name


class TestCsvLoader:
    def test_round_trip_single_table(self, tmp_path):
        rows = [
            {"i": 7, "f": 3.14159, "s": "hello, world", "d":
             datetime.date(1994, 5, 1)},
            {"i": -2, "f": 1e-9, "s": "quote'inside", "d":
             datetime.date(1998, 12, 31)},
        ]
        path = tmp_path / "t.csv"
        save_table(rows, str(path))
        assert load_table(str(path)) == rows

    def test_round_trip_generated_dataset(self, tmp_path, tpch_tables):
        save_tables(tpch_tables, str(tmp_path / "data"))
        loaded = load_tables(str(tmp_path / "data"))
        assert set(loaded) == set(tpch_tables)
        assert loaded["lineitem"] == tpch_tables["lineitem"]
        assert loaded["nation"] == tpch_tables["nation"]

    def test_float_exact_round_trip(self, tmp_path):
        value = 0.1 + 0.2  # not representable prettily
        path = tmp_path / "f.csv"
        save_table([{"x": value}], str(path))
        assert load_table(str(path))[0]["x"] == value

    def test_empty_table_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_table([], str(tmp_path / "e.csv"))

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_table([{"x": [1, 2]}], str(tmp_path / "bad.csv"))

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_tables(str(tmp_path))

    def test_loaded_dataset_runs_under_upa(self, tmp_path, tpch_tables):
        save_tables(tpch_tables, str(tmp_path / "d"))
        loaded = load_tables(str(tmp_path / "d"))
        session = UPASession(UPAConfig(sample_size=50, seed=1))
        result = session.run(query_by_name("tpch1"), loaded, epsilon=1.0)
        assert result.plain_output[0] == len(tpch_tables["lineitem"])


class TestSystemBehaviours:
    def test_upa_results_survive_task_faults(self, tpch_tables):
        """Engine-level failures must not change UPA's computed values."""
        query = query_by_name("tpch6")
        clean = UPASession(UPAConfig(sample_size=60, seed=4))
        clean_result = clean.run(query, tpch_tables, epsilon=0.5)

        faulty_engine = EngineContext(
            EngineConfig(default_parallelism=2, max_task_retries=8)
        )
        faulty_engine.install_fault_injector(
            FaultInjector(failure_probability=0.25, max_failures=12, seed=5)
        )
        faulty = UPASession(
            UPAConfig(sample_size=60, seed=4), engine=faulty_engine
        )
        faulty_result = faulty.run(query, tpch_tables, epsilon=0.5)

        assert faulty_engine.metrics.get("task_retries") > 0
        assert np.allclose(
            faulty_result.plain_output, clean_result.plain_output
        )
        assert faulty_result.local_sensitivity == pytest.approx(
            clean_result.local_sensitivity
        )

    def test_shared_enforcer_across_sessions(self, tpch_tables):
        """One dataset guarded by one enforcer: a second *session*
        resubmitting a neighbouring dataset is still detected."""
        enforcer = RangeEnforcer()
        query = query_by_name("tpch1")
        first_session = UPASession(
            UPAConfig(sample_size=60, seed=1), enforcer=enforcer
        )
        first_session.run(query, tpch_tables, epsilon=0.5)

        neighbour = dict(tpch_tables)
        neighbour["lineitem"] = tpch_tables["lineitem"][:-1]
        second_session = UPASession(
            UPAConfig(sample_size=60, seed=2), enforcer=enforcer
        )
        result = second_session.run(query, neighbour, epsilon=0.5)
        assert result.enforcement.matched_prior

    def test_session_isolated_enforcers_do_not_detect(self, tpch_tables):
        """Without a shared enforcer the attack is NOT detected — the
        registry is the defence, not the session object."""
        query = query_by_name("tpch1")
        UPASession(UPAConfig(sample_size=60, seed=1)).run(
            query, tpch_tables, epsilon=0.5
        )
        neighbour = dict(tpch_tables)
        neighbour["lineitem"] = tpch_tables["lineitem"][:-1]
        result = UPASession(UPAConfig(sample_size=60, seed=2)).run(
            query, neighbour, epsilon=0.5
        )
        assert not result.enforcement.matched_prior


class TestParserPrecedenceProperties:
    @given(
        a=st.integers(-9, 9), b=st.integers(-9, 9), c=st.integers(1, 9)
    )
    @settings(max_examples=40, deadline=None)
    def test_arithmetic_precedence_matches_python(self, a, b, c):
        session = SQLSession()
        session.create_table("one", [{"x": 1}])
        got = session.sql(
            f"SELECT {a} + {b} * {c} AS v FROM one"
        ).scalar()
        assert got == a + b * c

    @given(a=st.integers(-9, 9), b=st.integers(-9, 9), c=st.integers(-9, 9))
    @settings(max_examples=40, deadline=None)
    def test_parenthesized_expressions(self, a, b, c):
        session = SQLSession()
        session.create_table("one", [{"x": 1}])
        got = session.sql(
            f"SELECT ({a} + {b}) * {c} AS v FROM one"
        ).scalar()
        assert got == (a + b) * c

    @given(v=st.integers(-20, 20), lo=st.integers(-10, 10),
           hi=st.integers(-10, 10))
    @settings(max_examples=40, deadline=None)
    def test_and_binds_tighter_than_or(self, v, lo, hi):
        session = SQLSession()
        session.create_table("t", [{"x": v}])
        got = session.sql(
            f"SELECT COUNT(*) AS n FROM t "
            f"WHERE x = 0 OR x > {lo} AND x < {hi}"
        ).scalar()
        expected = 1 if (v == 0 or (v > lo and v < hi)) else 0
        assert got == expected

    @given(v=st.integers(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_unary_minus(self, v):
        session = SQLSession()
        session.create_table("t", [{"x": v}])
        assert session.sql("SELECT -x AS n FROM t").scalar() == -v
