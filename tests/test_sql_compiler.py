"""Tests for compiled, fused SQL execution (repro.sql.compiler + physical).

Covers the four tentpole pieces: expression codegen (shared semantics
with the interpreter), operator fusion (narrow chains are one RDD hop),
broadcast hash joins (shuffle elimination, strategy metrics), and the
plan/closure caches; plus the lazy LIMIT fix.
"""

from __future__ import annotations

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.sql import SQLSession, col, count_star, lit, sum_
from repro.sql.compiler import (
    CompiledExpression,
    closure_cache_stats,
    compile_expression,
    compile_predicate,
    compile_projection,
    expr_fingerprint,
    plan_fingerprint,
)
from repro.sql.optimizer import estimate_rows

ROWS = [
    {"a": i, "b": i % 3, "c": f"s{i % 5}", "v": float(i)} for i in range(40)
]
DIM = [{"k": i, "w": i * 10} for i in range(3)]


def _session(**kwargs) -> SQLSession:
    session = SQLSession(**kwargs)
    session.create_table("t", ROWS)
    session.create_table("d", DIM)
    return session


# ---------------------------------------------------------------------------
# Expression compiler
# ---------------------------------------------------------------------------


class TestCompiler:
    def test_closures_are_cached_by_fingerprint(self):
        # structurally identical expressions share one compiled closure
        f1 = compile_expression(col("a") + lit(1))
        f2 = compile_expression(col("a") + lit(1))
        assert f1 is f2

    def test_fingerprint_distinguishes_column_from_expression(self):
        # a column literally named "(a + 1)" must not unify with a + 1
        assert expr_fingerprint(col("(a + 1)")) != expr_fingerprint(
            col("a") + lit(1)
        )

    def test_constant_folding(self):
        fn = compile_expression(lit(2) + lit(3) * lit(4))
        assert fn({}) == 14
        assert "14" in fn._source

    def test_common_subexpression_reuse(self):
        fn = compile_expression((col("a") + col("b")) * (col("a") + col("b")))
        # the sum is computed once: exactly one addition in the source
        assert fn._source.count("+") == 1
        assert fn({"a": 3, "b": 4}) == 49

    def test_compiled_expression_wrapper_delegates(self):
        expr = col("a") + lit(1)
        wrapped = CompiledExpression(expr)
        assert wrapped.eval({"a": 2}) == 3
        assert wrapped.references() == {"a"}
        assert wrapped.output_name() == expr.output_name()

    def test_projection_closure_builds_whole_row(self):
        project = compile_projection(
            [col("a"), (col("a") + col("b")).alias("s")]
        )
        assert project({"a": 1, "b": 2}) == {"a": 1, "s": 3}

    def test_fallback_for_unknown_expression_type(self):
        class Weird(type(col("a")).__mro__[1]):  # Expression subclass
            def eval(self, row):
                return 42

            def references(self):
                return set()

        fn = compile_expression(Weird())
        assert fn({}) == 42

    def test_cache_stats_move(self):
        before = closure_cache_stats()
        compile_predicate(col("zz") > lit(before["hits"]))
        after = closure_cache_stats()
        assert after["misses"] >= before["misses"]


# ---------------------------------------------------------------------------
# Fusion
# ---------------------------------------------------------------------------


class TestFusion:
    def test_narrow_chain_is_single_rdd_hop(self):
        session = _session()
        df = (
            session.table("t")
            .filter(col("a") > 5)
            .select("a", "b")
            .filter(col("b") == 1)
        )
        rdd = df.to_rdd()
        base = session.catalog.rdd("t")
        # scan→filter→project→filter fused into ONE map_partitions
        assert rdd.dependencies == (base,)

    def test_fused_results_match_interpreted(self):
        compiled = (
            _session()
            .table("t")
            .filter(col("a") > 5)
            .select("a", "b")
            .filter(col("b") == 1)
            .collect()
        )
        interpreted = (
            _session(compile_expressions=False)
            .table("t")
            .filter(col("a") > 5)
            .select("a", "b")
            .filter(col("b") == 1)
            .collect()
        )
        assert compiled == interpreted
        assert compiled  # non-trivial

    def test_aggregate_agrees_across_modes(self):
        query = lambda s: (  # noqa: E731
            s.table("t")
            .group_by("b")
            .agg(count_star("n"), sum_(col("v"), "sv"))
            .order_by("b")
            .collect()
        )
        assert query(_session()) == query(_session(compile_expressions=False))


# ---------------------------------------------------------------------------
# Broadcast hash join
# ---------------------------------------------------------------------------


class TestBroadcastJoin:
    def _join(self, session):
        return (
            session.table("t")
            .join(session.table("d"), on=[("b", "k")])
            .agg(sum_(col("w") + col("v"), "s"))
        )

    def test_small_side_broadcasts_without_shuffle(self):
        session = _session()
        before = session.engine.metrics.snapshot()
        result = self._join(session).collect()
        delta = session.engine.metrics.snapshot().diff(before)
        assert delta.get(MetricsRegistry.RECORDS_SHUFFLED) == 0
        assert delta.get(MetricsRegistry.BROADCASTS) >= 1
        assert delta.get(MetricsRegistry.SQL_JOIN_BROADCAST) == 1
        assert delta.get(MetricsRegistry.SQL_JOIN_SHUFFLE) == 0
        assert result

    def test_threshold_zero_forces_shuffle(self):
        session = _session(broadcast_join_threshold=0)
        before = session.engine.metrics.snapshot()
        result = self._join(session).collect()
        delta = session.engine.metrics.snapshot().diff(before)
        assert delta.get(MetricsRegistry.RECORDS_SHUFFLED) > 0
        assert delta.get(MetricsRegistry.SQL_JOIN_SHUFFLE) == 1
        assert delta.get(MetricsRegistry.SQL_JOIN_BROADCAST) == 0
        assert result

    def test_strategies_agree_row_for_row(self):
        def rows(threshold):
            session = _session(broadcast_join_threshold=threshold)
            return sorted(
                session.table("t")
                .join(session.table("d"), on=[("b", "k")])
                .collect(),
                key=lambda r: (r["a"],),
            )

        assert rows(10_000) == rows(0)

    @pytest.mark.parametrize("how", ["left", "semi", "anti"])
    def test_non_inner_joins_agree(self, how):
        def rows(threshold):
            session = _session(broadcast_join_threshold=threshold)
            left = session.table("t")
            right = session.table("d")
            if how == "left":
                df = left.join(right, on=[("b", "k")], how="left")
            elif how == "semi":
                df = left.semi_join(right, on=[("b", "k")])
            else:
                df = left.anti_join(right, on=[("b", "k")])
            return sorted(df.collect(), key=lambda r: r["a"])

        assert rows(10_000) == rows(0)

    def test_tpch_q13_broadcast_eliminates_shuffle(self):
        from repro.tpch import TPCHConfig, TPCHGenerator, query_by_name

        tables = TPCHGenerator(TPCHConfig(scale_rows=300, seed=7)).generate()
        q13 = query_by_name("tpch13")

        def run(threshold):
            session = SQLSession(broadcast_join_threshold=threshold)
            for name, rows in tables.items():
                session.create_table(name, rows)
            before = session.engine.metrics.snapshot()
            value = q13.dataframe(session).scalar()
            delta = session.engine.metrics.snapshot().diff(before)
            return value, delta

        broadcast_value, broadcast_delta = run(1_000_000)
        shuffle_value, shuffle_delta = run(0)
        assert broadcast_value == shuffle_value
        # the shuffle is demonstrably eliminated
        assert broadcast_delta.get(MetricsRegistry.RECORDS_SHUFFLED) == 0
        assert broadcast_delta.get(MetricsRegistry.SQL_JOIN_BROADCAST) >= 1
        assert shuffle_delta.get(MetricsRegistry.RECORDS_SHUFFLED) > 0

    def test_estimate_rows_bounds(self):
        session = _session()
        catalog = session.catalog
        scan_t = session.table("t").plan
        scan_d = session.table("d").plan
        assert estimate_rows(scan_t, catalog) == len(ROWS)
        filtered = session.table("t").filter(col("a") > 5).plan
        assert estimate_rows(filtered, catalog) == len(ROWS)
        joined = session.table("t").join(
            session.table("d"), on=[("b", "k")]
        ).plan
        assert estimate_rows(joined, catalog) == len(ROWS) * len(DIM)
        agg = session.table("t").agg(count_star("n")).plan
        assert estimate_rows(agg, catalog) == 1
        assert estimate_rows(scan_d, catalog) == len(DIM)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_repeat_execution_hits_cache(self):
        session = _session()
        df = session.table("t").filter(col("a") > 5).select("a")
        metrics = session.engine.metrics
        first = df.to_rdd()
        assert metrics.get(MetricsRegistry.SQL_PLAN_CACHE_MISSES) == 1
        second = df.to_rdd()
        assert second is first
        assert metrics.get(MetricsRegistry.SQL_PLAN_CACHE_HITS) == 1

    def test_table_update_invalidates(self):
        session = _session()
        df = session.table("t").agg(count_star("n"))
        assert df.scalar() == len(ROWS)
        session.create_table("t", ROWS[:10])
        assert session.table("t").agg(count_star("n")).scalar() == 10

    def test_mode_flags_key_the_cache(self):
        session = _session()
        df = session.table("t").filter(col("a") > 5)
        compiled_rdd = df.to_rdd()
        session.compile_expressions = False
        interpreted_rdd = df.to_rdd()
        assert interpreted_rdd is not compiled_rdd
        assert sorted(r["a"] for r in interpreted_rdd.collect()) == sorted(
            r["a"] for r in compiled_rdd.collect()
        )

    def test_plan_fingerprint_is_structural(self):
        session = _session()
        p1 = session.table("t").filter(col("a") > 5).plan
        p2 = session.table("t").filter(col("a") > 5).plan
        p3 = session.table("t").filter(col("a") > 6).plan
        assert plan_fingerprint(p1) == plan_fingerprint(p2)
        assert plan_fingerprint(p1) != plan_fingerprint(p3)


# ---------------------------------------------------------------------------
# Lazy LIMIT
# ---------------------------------------------------------------------------


class TestLazyLimit:
    def test_limit_runs_no_job_at_plan_time(self):
        session = _session()
        metrics = session.engine.metrics
        before = metrics.get(MetricsRegistry.JOBS)
        rdd = session.table("t").limit(5).to_rdd()
        assert metrics.get(MetricsRegistry.JOBS) == before  # still lazy
        assert len(rdd.collect()) == 5

    def test_limit_results_match_interpreted(self):
        compiled = _session().table("t").order_by("a").limit(7).collect()
        interpreted = (
            _session(compile_expressions=False)
            .table("t")
            .order_by("a")
            .limit(7)
            .collect()
        )
        assert compiled == interpreted
        assert len(compiled) == 7

    def test_limit_larger_than_input(self):
        assert len(_session().table("t").limit(999).collect()) == len(ROWS)
