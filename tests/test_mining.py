"""Tests for the life-science generator, KMeans and Linear Regression."""

import random

import numpy as np
import pytest

from repro.mining import (
    KMeansQuery,
    LifeScienceConfig,
    LinearRegressionQuery,
    make_life_science_tables,
)
from repro.mining.datasets import domain_point


class TestDataset:
    def test_deterministic(self):
        cfg = LifeScienceConfig(num_records=100, seed=3)
        assert make_life_science_tables(cfg) == make_life_science_tables(cfg)

    def test_shape(self, ml_tables):
        rows = ml_tables["points"]
        assert len(rows) == 800
        assert all(len(r["features"]) == 3 for r in rows[:20])
        assert all(isinstance(r["label"], float) for r in rows[:20])

    def test_outlier_rate(self):
        cfg = LifeScienceConfig(
            num_records=20_000, dim=2, outlier_rate=0.01, seed=1
        )
        rows = make_life_science_tables(cfg)["points"]
        norms = np.array(
            [np.linalg.norm(np.asarray(r["features"])) for r in rows]
        )
        # some points are far outside the +-11 cluster envelope
        assert np.sum(norms > 14) > 10

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LifeScienceConfig(num_records=5)
        with pytest.raises(ValueError):
            LifeScienceConfig(dim=0)

    def test_domain_point_shape(self):
        cfg = LifeScienceConfig(dim=3)
        row = domain_point(random.Random(0), cfg)
        assert len(row["features"]) == 3
        assert "label" in row


class TestLinearRegression:
    def test_single_step_reduces_loss(self, ml_tables):
        query = LinearRegressionQuery(dim=3, learning_rate=0.005)
        before = query.mean_squared_error(
            ml_tables, query.initial_weights
        )
        after_weights = query.output(ml_tables)
        after = query.mean_squared_error(ml_tables, after_weights)
        assert after < before

    def test_training_converges_towards_truth(self, ml_tables):
        query = LinearRegressionQuery(dim=3, learning_rate=0.005)
        weights = query.train(ml_tables, steps=60)
        mse = query.mean_squared_error(ml_tables, weights)
        initial = query.mean_squared_error(ml_tables, query.initial_weights)
        assert mse < initial / 4

    def test_output_dim(self):
        query = LinearRegressionQuery(dim=5)
        assert query.output_dim == 6  # weights + bias

    def test_gradient_matches_numeric(self, ml_tables):
        query = LinearRegressionQuery(dim=3)
        aux = query.build_aux(ml_tables)
        record = ml_tables["points"][0]
        grad, count = query.map_record(record, aux)
        assert count == 1
        x = np.append(np.asarray(record["features"]), 1.0)
        residual = float(x @ aux) - record["label"]
        assert grad == pytest.approx(residual * x)

    def test_finalize_on_empty_returns_initial(self):
        query = LinearRegressionQuery(dim=2)
        out = query.finalize(query.zero(), query.initial_weights)
        assert np.allclose(out, query.initial_weights)

    def test_bad_initial_weights_shape(self):
        with pytest.raises(ValueError):
            LinearRegressionQuery(dim=3, initial_weights=np.zeros(2))

    def test_neighbour_influence_bounded_by_max_gradient(self, ml_tables):
        from repro.baselines.bruteforce import exact_local_sensitivity

        query = LinearRegressionQuery(dim=3, learning_rate=0.005)
        result = exact_local_sensitivity(query, ml_tables)
        assert result.local_sensitivity > 0
        # one record of N shifts the average gradient by O(1/N)
        assert result.local_sensitivity < 1.0


class TestKMeans:
    def test_one_step_reduces_inertia(self, ml_tables):
        query = KMeansQuery(num_clusters=2, dim=3)
        centers0 = query.build_aux(ml_tables)
        centers1 = query.output(ml_tables).reshape(2, 3)
        assert query.inertia(ml_tables, centers1) <= query.inertia(
            ml_tables, centers0
        )

    def test_fit_converges(self, ml_tables):
        query = KMeansQuery(num_clusters=2, dim=3)
        centers = query.fit(ml_tables, iterations=15)
        once_more = KMeansQuery(2, 3, centers).output(ml_tables).reshape(2, 3)
        assert np.allclose(centers, once_more, atol=1e-6)

    def test_assignment_one_hot(self, ml_tables):
        query = KMeansQuery(num_clusters=2, dim=3)
        aux = query.build_aux(ml_tables)
        counts, sums = query.map_record(ml_tables["points"][0], aux)
        assert counts.sum() == 1.0
        chosen = int(np.argmax(counts))
        assert np.allclose(
            sums[chosen], np.asarray(ml_tables["points"][0]["features"])
        )

    def test_empty_cluster_keeps_center(self):
        query = KMeansQuery(num_clusters=2, dim=2,
                            initial_centers=np.array([[0.0, 0.0], [100.0, 100.0]]))
        tables = {"points": [{"features": (0.1, 0.1), "label": 0.0}]}
        out = query.finalize(
            query.map_record(tables["points"][0], query.build_aux(tables)),
            query.build_aux(tables),
        ).reshape(2, 2)
        assert np.allclose(out[1], [100.0, 100.0])  # untouched center

    def test_initial_centers_from_data_are_distinct(self, ml_tables):
        query = KMeansQuery(num_clusters=2, dim=3)
        centers = query.build_aux(ml_tables)
        assert not np.allclose(centers[0], centers[1])

    def test_too_few_distinct_points(self):
        query = KMeansQuery(num_clusters=3, dim=1)
        tables = {"points": [{"features": (1.0,), "label": 0.0}] * 5}
        with pytest.raises(ValueError):
            query.build_aux(tables)

    def test_bad_centers_shape(self):
        with pytest.raises(ValueError):
            KMeansQuery(2, 2, initial_centers=np.zeros((3, 2)))

    def test_output_dim(self):
        assert KMeansQuery(num_clusters=3, dim=4).output_dim == 12
