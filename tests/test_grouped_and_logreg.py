"""Tests for grouped histogram releases and logistic regression."""

import numpy as np
import pytest

from repro.common.errors import DPError
from repro.core.grouped import GroupSliceQuery, release_histogram
from repro.mining import LifeScienceConfig, make_life_science_tables
from repro.mining.logreg import LogisticRegressionQuery, _sigmoid
from repro.tpch.datagen import PRIORITIES
from repro.tpch.queries.base import random_order


class TestGroupedRelease:
    def test_histogram_counts_roughly_correct(self, tpch_tables):
        result = release_histogram(
            tpch_tables,
            protected_table="orders",
            groups=PRIORITIES,
            group_of=lambda o: o["o_orderpriority"],
            epsilon=5.0,
            domain_sampler=random_order,
            sample_size=100,
            seed=2,
        )
        truth_total = sum(result.true_values.values())
        assert truth_total == len(tpch_tables["orders"])
        for group in PRIORITIES:
            assert abs(
                result.released[group] - result.true_values[group]
            ) < 40  # Laplace(2/5) tail

    def test_groups_partition_influence(self, tpch_tables):
        """A record contributes to exactly one group's query."""
        queries = [
            GroupSliceQuery(
                "h", "orders", priority,
                lambda o: o["o_orderpriority"], None, random_order,
            )
            for priority in PRIORITIES
        ]
        for order in tpch_tables["orders"][:50]:
            contributions = [q.map_record(order, None) for q in queries]
            assert sum(contributions) == 1.0
            assert contributions.count(1.0) == 1

    def test_sum_histogram(self, tpch_tables):
        result = release_histogram(
            tpch_tables,
            protected_table="orders",
            groups=["F", "O", "P"],
            group_of=lambda o: o["o_orderstatus"],
            epsilon=5.0,
            value_of=lambda o: 1.0,  # sum of ones == count
            domain_sampler=random_order,
            sample_size=100,
        )
        assert sum(result.true_values.values()) == len(tpch_tables["orders"])

    def test_absent_group_released_as_noise_around_zero(self, tpch_tables):
        result = release_histogram(
            tpch_tables,
            protected_table="orders",
            groups=["NO-SUCH-PRIORITY"],
            group_of=lambda o: o["o_orderpriority"],
            epsilon=5.0,
            domain_sampler=random_order,
            sample_size=100,
        )
        assert result.true_values["NO-SUCH-PRIORITY"] == 0.0
        assert abs(result.released["NO-SUCH-PRIORITY"]) < 30

    def test_duplicate_groups_rejected(self, tpch_tables):
        with pytest.raises(DPError):
            release_histogram(
                tpch_tables, "orders", ["F", "F"],
                lambda o: o["o_orderstatus"], epsilon=1.0,
            )

    def test_invalid_epsilon(self, tpch_tables):
        with pytest.raises(DPError):
            release_histogram(
                tpch_tables, "orders", ["F"],
                lambda o: o["o_orderstatus"], epsilon=0.0,
            )


class TestLogisticRegression:
    @pytest.fixture(scope="class")
    def tables(self):
        return make_life_science_tables(
            LifeScienceConfig(num_records=1500, dim=3, num_clusters=2, seed=9)
        )

    def test_sigmoid_stable(self):
        assert _sigmoid(0.0) == 0.5
        assert _sigmoid(800.0) == pytest.approx(1.0)
        assert _sigmoid(-800.0) == pytest.approx(0.0)

    def test_training_beats_chance(self, tables):
        query = LogisticRegressionQuery(dim=3, learning_rate=0.1)
        weights = query.train(tables, steps=40)
        labels = [1.0 if r["label"] > 0 else 0.0 for r in tables["points"]]
        base_rate = max(np.mean(labels), 1 - np.mean(labels))
        assert query.accuracy(tables, weights) > base_rate + 0.02

    def test_monoid(self, tables):
        LogisticRegressionQuery(dim=3).validate_monoid(tables, sample=20)

    def test_gradient_bounded(self, tables):
        """Logistic gradients are bounded by |x|, unlike squared loss."""
        query = LogisticRegressionQuery(dim=3)
        aux = query.build_aux(tables)
        for record in tables["points"][:100]:
            gradient, _count = query.map_record(record, aux)
            x = np.append(np.asarray(record["features"]), 1.0)
            assert np.all(np.abs(gradient) <= np.abs(x) + 1e-12)

    def test_runs_under_upa(self, tables):
        from repro.core import UPAConfig, UPASession

        query = LogisticRegressionQuery(dim=3)
        session = UPASession(UPAConfig(sample_size=100, seed=3))
        result = session.run(query, tables, epsilon=1.0)
        assert result.noisy_output.shape == (4,)

    def test_bad_weight_shape(self):
        with pytest.raises(ValueError):
            LogisticRegressionQuery(dim=3, initial_weights=np.zeros(7))

    def test_finalize_empty_returns_initial(self):
        query = LogisticRegressionQuery(dim=2)
        out = query.finalize(query.zero(), query.initial_weights)
        assert np.allclose(out, query.initial_weights)
