"""Tests for the CLI and the utility-analysis module."""

import pytest

from repro.analysis.utility import (
    UtilityStudy,
    noise_with_sensitivity,
    released_error_curve,
)
from repro.cli import main
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.workload import query_by_name


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tpch21" in out and "kmeans" in out

    def test_run(self, capsys):
        assert main(
            ["run", "tpch1", "--scale", "2000", "--epsilon", "1.0",
             "--sample-size", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "released (noisy)" in out
        assert "2000" in out  # the true count appears

    def test_run_vector_workload(self, capsys):
        assert main(
            ["run", "linreg", "--scale", "500", "--sample-size", "50"]
        ) == 0
        assert "inferred sensitivity" in capsys.readouterr().out

    def test_run_sql(self, capsys):
        assert main(
            ["run-sql", "SELECT COUNT(*) AS n FROM customer",
             "--protect", "customer", "--scale", "2000"]
        ) == 0
        assert "released" in capsys.readouterr().out

    def test_run_sql_unknown_protect(self, capsys):
        assert main(
            ["run-sql", "SELECT COUNT(*) AS n FROM nation",
             "--protect", "nation", "--scale", "2000"]
        ) == 2
        assert "no domain sampler" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "tpch1", "--scale", "2000"]) == 0
        out = capsys.readouterr().out
        assert "brute force" in out and "FLEX" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "tpch99"])


class TestUtility:
    @pytest.fixture(scope="class")
    def tables(self):
        return TPCHGenerator(TPCHConfig(scale_rows=2000, seed=8)).generate()

    def test_error_decreases_with_epsilon(self, tables):
        study = released_error_curve(
            query_by_name("tpch1"), tables,
            epsilons=(0.01, 10.0), trials=6, sample_size=100,
        )
        assert isinstance(study, UtilityStudy)
        low_eps, high_eps = study.points
        assert low_eps.mean_absolute_error > high_eps.mean_absolute_error

    def test_relative_error_normalized(self, tables):
        study = released_error_curve(
            query_by_name("tpch1"), tables,
            epsilons=(1.0,), trials=4, sample_size=100,
        )
        point = study.points[0]
        assert point.mean_relative_error == pytest.approx(
            point.mean_absolute_error / study.truth
        )

    def test_noise_with_sensitivity_scales(self):
        small = noise_with_sensitivity(100.0, 1.0, epsilon=1.0, trials=300)
        large = noise_with_sensitivity(100.0, 1000.0, epsilon=1.0, trials=300)
        assert large > 100 * small

    def test_flex_sensitivity_would_destroy_utility(self, tables):
        """The paper's utility argument, end-to-end: noise from FLEX's
        overestimated Q16 sensitivity swamps the true answer."""
        from repro.baselines import flex_local_sensitivity
        from repro.sql import SQLSession
        from repro.tpch.datagen import register_tables

        query = query_by_name("tpch16")
        truth = query.output(tables)[0]
        sql = SQLSession()
        register_tables(sql, tables)
        flex_sens = flex_local_sensitivity(
            query.dataframe(sql).plan, tables
        ).sensitivity
        flex_error = noise_with_sensitivity(
            truth, flex_sens, epsilon=0.1, trials=200
        )
        upa_error = noise_with_sensitivity(
            truth, 4.0, epsilon=0.1, trials=200
        )
        assert flex_error > 5 * upa_error
