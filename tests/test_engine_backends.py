"""Cross-backend equivalence and fault tolerance for the executor.

The engine promises that ``EngineConfig(backend=...)`` is purely an
execution-strategy choice: inline, thread-pool and process-pool
execution compute identical results — including every DP release under
fixed seeds — and the process backend survives worker death by
respawning its pool and recomputing lost partitions from lineage.

Process-pool specifics exercised here:

* picklable lineages actually run in worker processes (no fallback,
  different PIDs);
* unpicklable closures transparently fall back (counted in
  ``process_fallbacks``) with unchanged results;
* a killed worker breaks the pool (``BrokenProcessPool``); the
  scheduler respawns it, retries, and still returns correct results;
* permanent failures surface as :class:`TaskFailedError` carrying
  stage/partition/attempt context (never a raw pool exception);
* the ``spawn`` start method works (workers re-import modules from a
  replayed ``sys.path``);
* with a tracer installed, worker-side telemetry (spans, labelled
  metrics, health gauges) is piggybacked on task results and merged
  into the driver collectors — exactly once per recorded result, so a
  respawned worker cannot double-count (see
  :mod:`repro.obs.crossproc`).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import EngineConfig
from repro.common.errors import TaskFailedError
from repro.core import UPAConfig, UPASession
from repro.engine import EngineContext
from repro.engine.fault import FaultInjector
from repro.engine.metrics import MetricsRegistry
from repro.mining import LifeScienceConfig, make_life_science_tables
from repro.obs.crossproc import (
    WORKER_RSS_KB,
    WORKER_TASKS_COMPLETED,
    WORKER_UPTIME_SECONDS,
)
from repro.obs.exporters import split_labeled_name
from repro.obs.tracing import Tracer
from repro.sql import SQLSession
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.datagen import register_tables
from repro.tpch.workload import all_queries
from repro.workloads import all_workloads

BACKENDS = ("inline", "threads", "processes")


def make_ctx(backend: str, **overrides) -> EngineContext:
    overrides.setdefault("max_workers", 2)
    overrides.setdefault("default_parallelism", 4)
    # CI re-runs this suite with REPRO_PROCESS_START_METHOD=spawn to
    # cover macOS/Windows re-import semantics on Linux runners.
    forced = os.environ.get("REPRO_PROCESS_START_METHOD")
    if forced:
        overrides.setdefault("process_start_method", forced)
    return EngineContext(EngineConfig(backend=backend, **overrides))


# Module-level functions/classes: picklable, so the process backend
# executes them in workers instead of falling back.

def _square(v):
    return v * v


def _is_small(v):
    return v % 3 != 0


def _add(a, b):
    return a + b


def _partition_pid(it):
    return [os.getpid()]


def _sum_column_x(it):
    return [sum(r["x"] for r in it)]


class _KillOnce:
    """Kill the hosting worker the first time a task runs it.

    The flag file lives on the shared filesystem, so after the respawn
    the retried attempt sees it and completes normally.
    """

    def __init__(self, flag_path: str):
        self.flag_path = flag_path

    def __call__(self, it):
        rows = list(it)
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w"):
                pass
            os._exit(13)
        return [v * 3 for v in rows]


class _KillAlways:
    """Kill the hosting worker on every attempt."""

    def __call__(self, it):
        os._exit(13)


# ----------------------------------------------------------------------
# Process execution semantics
# ----------------------------------------------------------------------


class TestProcessExecution:
    def test_picklable_lineage_runs_in_workers(self):
        ctx = make_ctx("processes")
        try:
            out = (
                ctx.parallelize(range(40), 4)
                .map(_square)
                .filter(_is_small)
                .collect()
            )
            assert out == [v * v for v in range(40) if _is_small(v * v)]
            snap = ctx.metrics.snapshot()
            assert snap.get(MetricsRegistry.PROCESS_FALLBACKS) == 0
            assert snap.get(MetricsRegistry.TASKS) == 4
        finally:
            ctx.stop()

    def test_tasks_run_outside_the_driver_process(self):
        ctx = make_ctx("processes")
        try:
            pids = set(
                ctx.parallelize(range(8), 4)
                .map_partitions(_partition_pid)
                .collect()
            )
            assert os.getpid() not in pids
        finally:
            ctx.stop()

    def test_unpicklable_closure_falls_back_with_same_result(self):
        ctx = make_ctx("processes")
        try:
            out = ctx.parallelize(range(20), 4).map(lambda v: v + 1).collect()
            assert out == list(range(1, 21))
            snap = ctx.metrics.snapshot()
            assert snap.get(MetricsRegistry.PROCESS_FALLBACKS) >= 1
        finally:
            ctx.stop()

    def test_columnar_partitions_ship_to_workers(self):
        rows = [{"x": float(i), "y": i} for i in range(100)]
        ctx = make_ctx("processes")
        try:
            out = (
                ctx.parallelize_columnar(rows, 4)
                .map_partitions(_sum_column_x)
                .collect()
            )
            assert sum(out) == sum(r["x"] for r in rows)
            assert ctx.metrics.get(MetricsRegistry.PROCESS_FALLBACKS) == 0
        finally:
            ctx.stop()

    def test_spawn_start_method(self):
        ctx = make_ctx("processes", process_start_method="spawn")
        try:
            out = ctx.parallelize(range(12), 2).map(_square).collect()
            assert out == [v * v for v in range(12)]
            assert ctx.metrics.get(MetricsRegistry.PROCESS_FALLBACKS) == 0
        finally:
            ctx.stop()

    def test_stop_clears_block_store(self):
        ctx = make_ctx("inline")
        rdd = ctx.parallelize(range(10), 2).cache()
        assert rdd.collect() == list(range(10))
        assert len(ctx.block_store) > 0
        ctx.stop()
        assert len(ctx.block_store) == 0


# ----------------------------------------------------------------------
# Fault tolerance
# ----------------------------------------------------------------------


class TestProcessFaultTolerance:
    def test_worker_kill_respawns_and_recomputes(self, tmp_path):
        ctx = make_ctx("processes")
        try:
            kill = _KillOnce(str(tmp_path / "killed.flag"))
            out = ctx.parallelize(range(12), 3).map_partitions(kill).collect()
            assert out == [v * 3 for v in range(12)]
            snap = ctx.metrics.snapshot()
            assert snap.get(MetricsRegistry.WORKER_RESPAWNS) >= 1
            assert snap.get(MetricsRegistry.TASK_RETRIES) >= 1
        finally:
            ctx.stop()

    def test_persistent_failure_wraps_in_task_failed_error(self):
        ctx = make_ctx("processes", max_task_retries=1)
        try:
            with pytest.raises(TaskFailedError) as err:
                ctx.parallelize(range(4), 2).map_partitions(
                    _KillAlways()
                ).collect()
            failure = err.value
            assert failure.attempts == 2  # max_task_retries + 1
            assert failure.partition in (0, 1)
            assert isinstance(failure.cause, BrokenProcessPool)
        finally:
            ctx.stop()

    def test_injected_faults_match_failure_free_run(self):
        expected = make_ctx("inline").parallelize(range(30), 3).map(
            _square
        ).collect()
        ctx = make_ctx("processes")
        try:
            injector = FaultInjector(
                failure_probability=0.5, max_failures=3, seed=1
            )
            ctx.install_fault_injector(injector)
            out = ctx.parallelize(range(30), 3).map(_square).collect()
            assert out == expected
            assert injector.failures_injected >= 1
            assert (
                ctx.metrics.get(MetricsRegistry.TASK_RETRIES)
                == injector.failures_injected
            )
        finally:
            ctx.stop()


# ----------------------------------------------------------------------
# Cross-process telemetry (repro.obs.crossproc)
# ----------------------------------------------------------------------


def _labelled(series: dict, base: str) -> dict:
    """The ``worker``-labelled members of one metric family."""
    out = {}
    for raw, value in series.items():
        got_base, labels = split_labeled_name(raw)
        if got_base == base and labels and "worker" in labels:
            out[labels["worker"]] = value
    return out


class TestCrossProcessTelemetry:
    def test_worker_spans_parent_under_their_own_job(self):
        ctx = make_ctx("processes")
        tracer = Tracer()
        ctx.install_tracer(tracer, events=False)
        try:
            ctx.parallelize(range(8), 4).map(_square).collect()
            ctx.parallelize(range(8), 4).map(_square).collect()
            assert ctx.metrics.get(MetricsRegistry.PROCESS_FALLBACKS) == 0
        finally:
            ctx.stop()
        jobs = {s.span_id: s for s in tracer.spans()
                if s.name == "engine.job"}
        tasks = [s for s in tracer.spans() if s.name == "engine.task"]
        assert len(jobs) == 2
        assert len(tasks) == 8
        # Each worker span hangs under the job that shipped it — not
        # under the other job, not under a dangling foreign id.
        per_job: dict = {}
        for task in tasks:
            assert task.parent_id in jobs
            per_job[task.parent_id] = per_job.get(task.parent_id, 0) + 1
            # ...and really ran out-of-process.
            assert task.attributes.get("worker") not in (None, os.getpid())
            # Rebasing kept the span inside its job's wall-clock window
            # (generous slack: epochs come from different clocks).
            job = jobs[task.parent_id]
            assert task.start >= job.start - 1.0
        assert sorted(per_job.values()) == [4, 4]

    def test_worker_metrics_merge_under_worker_labels(self):
        ctx = make_ctx("processes")
        tracer = Tracer()
        ctx.install_tracer(tracer, events=False)
        try:
            ctx.parallelize(range(8), 4).map(_square).collect()
            snap = ctx.metrics.snapshot()
        finally:
            ctx.stop()
        per_worker = _labelled(
            {k: len(v) for k, v in snap.histograms.items()},
            MetricsRegistry.TASK_SECONDS,
        )
        assert sum(per_worker.values()) == 4  # one obs per partition
        for base in (WORKER_RSS_KB, WORKER_UPTIME_SECONDS,
                     WORKER_TASKS_COMPLETED):
            gauges = _labelled(snap.gauges, base)
            assert set(gauges) == set(per_worker), base
            assert all(v > 0 for v in gauges.values()), base

    def test_telemetry_survives_respawn_without_double_count(self, tmp_path):
        ctx = make_ctx("processes")
        tracer = Tracer()
        ctx.install_tracer(tracer, events=False)
        try:
            kill = _KillOnce(str(tmp_path / "killed.flag"))
            out = ctx.parallelize(range(12), 3).map_partitions(kill).collect()
            assert out == [v * 3 for v in range(12)]
            snap = ctx.metrics.snapshot()
            assert snap.get(MetricsRegistry.WORKER_RESPAWNS) >= 1
        finally:
            ctx.stop()
        # The killed attempt shipped nothing; only recorded results
        # merge.  Exactly one engine.task span and one labelled
        # task_seconds observation per partition.
        tasks = [s for s in tracer.spans() if s.name == "engine.task"]
        assert len(tasks) == 3
        per_worker = _labelled(
            {k: len(v) for k, v in snap.histograms.items()},
            MetricsRegistry.TASK_SECONDS,
        )
        assert sum(per_worker.values()) == 3

    def test_spawned_workers_ship_telemetry_too(self):
        ctx = make_ctx("processes", process_start_method="spawn")
        tracer = Tracer()
        ctx.install_tracer(tracer, events=False)
        try:
            out = ctx.parallelize(range(8), 2).map(_square).collect()
            assert out == [v * v for v in range(8)]
            snap = ctx.metrics.snapshot()
        finally:
            ctx.stop()
        tasks = [s for s in tracer.spans() if s.name == "engine.task"]
        assert len(tasks) == 2
        assert _labelled(snap.gauges, WORKER_TASKS_COMPLETED)

    def test_untraced_processes_run_ships_nothing(self):
        ctx = make_ctx("processes")
        try:
            ctx.parallelize(range(8), 4).map(_square).collect()
            snap = ctx.metrics.snapshot()
        finally:
            ctx.stop()
        # Telemetry is gated on the tracer: without one, no labelled
        # series appear anywhere (the untraced path is unchanged).
        for series in (snap.counters, snap.gauges, snap.histograms):
            assert all("#" not in name for name in series)


# ----------------------------------------------------------------------
# Cross-backend equivalence: engine primitives (property-based)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def backend_ctxs():
    ctxs = {backend: make_ctx(backend) for backend in BACKENDS}
    yield ctxs
    for ctx in ctxs.values():
        ctx.stop()


SMALL_INTS = st.lists(st.integers(-50, 50), max_size=40)
PARTS = st.integers(1, 5)


class TestCrossBackendProperties:
    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=15, deadline=None)
    def test_map_filter_collect_identical(self, backend_ctxs, data, parts):
        results = [
            backend_ctxs[b]
            .parallelize(data, parts)
            .map(_square)
            .filter(_is_small)
            .collect()
            for b in BACKENDS
        ]
        assert results[0] == results[1] == results[2]

    @given(data=SMALL_INTS, parts=PARTS)
    @settings(max_examples=15, deadline=None)
    def test_aggregations_identical(self, backend_ctxs, data, parts):
        sums = {
            b: backend_ctxs[b].parallelize(data, parts).map(_square).sum()
            for b in BACKENDS
        }
        assert len(set(sums.values())) == 1

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 5), st.integers(-20, 20)), max_size=40
        ),
        parts=PARTS,
    )
    @settings(max_examples=10, deadline=None)
    def test_shuffle_results_identical(self, backend_ctxs, pairs, parts):
        results = [
            dict(
                backend_ctxs[b]
                .parallelize(pairs, parts)
                .reduce_by_key(_add)
                .collect()
            )
            for b in BACKENDS
        ]
        assert results[0] == results[1] == results[2]


# ----------------------------------------------------------------------
# Cross-backend equivalence: the nine DP workloads + TPC-H SQL
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def workload_tables():
    return {
        "tpch": TPCHGenerator(TPCHConfig(scale_rows=300, seed=11)).generate(),
        "ml": make_life_science_tables(
            LifeScienceConfig(num_records=200, dim=4, num_clusters=3, seed=11)
        ),
    }


class TestCrossBackendWorkloads:
    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name
    )
    def test_dp_outputs_identical(self, workload, workload_tables):
        tables = workload_tables[
            "ml" if workload.query_type == "ml" else "tpch"
        ]
        results = {}
        for backend in BACKENDS:
            engine = make_ctx(backend, default_parallelism=2)
            try:
                session = UPASession(
                    UPAConfig(sample_size=30, seed=77), engine=engine
                )
                results[backend] = session.run(
                    workload.query, tables, epsilon=0.5
                )
            finally:
                engine.stop()
        base = results["inline"]
        for backend in ("threads", "processes"):
            other = results[backend]
            assert np.array_equal(
                base.noisy_output, other.noisy_output
            ), backend
            assert np.array_equal(
                base.removal_outputs, other.removal_outputs
            ), backend
            assert base.local_sensitivity == other.local_sensitivity

    @pytest.mark.parametrize(
        "query", all_queries(), ids=lambda q: q.name
    )
    def test_tpch_sql_identical_across_backends(self, query, workload_tables):
        tables = workload_tables["tpch"]
        collected = {}
        for backend in BACKENDS:
            engine = make_ctx(backend, default_parallelism=2)
            try:
                session = SQLSession(engine=engine)
                register_tables(session, tables)
                collected[backend] = query.dataframe(session).collect()
            finally:
                engine.stop()
        assert collected["inline"] == collected["threads"]
        assert collected["inline"] == collected["processes"]

    @pytest.mark.parametrize(
        "query", all_queries(), ids=lambda q: q.name
    )
    def test_tpch_sql_columnar_matches_row_layout(self, query, workload_tables):
        tables = workload_tables["tpch"]
        outputs = {}
        for columnar in (False, True):
            session = SQLSession()
            register_tables(session, tables, columnar=columnar)
            outputs[columnar] = query.dataframe(session).collect()
        assert outputs[False] == outputs[True]
