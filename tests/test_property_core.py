"""Property-based tests for UPA's core invariants.

* every workload's reducer is a commutative, associative monoid — the
  property UPA's reuse argument needs;
* prefix/suffix "all-but-one" folds agree with literal re-evaluation
  (brute force correctness);
* the inferred output range always covers the sampled neighbour
  outputs (the iDP clamping precondition);
* Laplace noise satisfies the epsilon-DP likelihood-ratio bound.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import (
    exact_local_sensitivity,
    literal_local_sensitivity,
)
from repro.core.inference import InferenceConfig, infer_output_range
from repro.core.query import MapReduceQuery, Tables
from repro.mining import LifeScienceConfig, make_life_science_tables
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.workloads import all_workloads


class _SumQuery(MapReduceQuery):
    """Minimal scalar sum query over a 'vals' table for property tests."""

    name = "prop-sum"
    protected_table = "vals"
    output_dim = 1

    def map_record(self, record, aux):
        return float(record["v"])

    def zero(self):
        return 0.0

    def combine(self, a, b):
        return a + b

    def finalize(self, agg, aux):
        return np.asarray([agg], dtype=float)

    def sample_domain_record(self, rng, tables):
        return {"v": rng.uniform(-100, 100)}


def _tables(values) -> Tables:
    return {"vals": [{"v": float(v)} for v in values]}


class TestMonoidLaws:
    @given(values=st.lists(st.integers(-40, 40), min_size=2, max_size=30),
           seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_sum_query_order_invariance(self, values, seed):
        query = _SumQuery()
        tables = _tables(values)
        aux = query.build_aux(tables)
        elements = [query.map_record(r, aux) for r in tables["vals"]]
        rng = random.Random(seed)
        shuffled = list(elements)
        rng.shuffle(shuffled)
        split = rng.randrange(1, len(elements))
        grouped = query.combine(
            query.fold(shuffled[:split]), query.fold(shuffled[split:])
        )
        assert query.finalize(grouped, aux) == pytest.approx(
            query.finalize(query.fold(elements), aux)
        )

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name
    )
    def test_all_nine_workloads_are_monoids(self, workload):
        tables = workload.make_tables(1500, 4)
        workload.query.validate_monoid(tables, sample=24, seed=1)


class TestBruteForceCorrectness:
    @given(values=st.lists(st.integers(-30, 30), min_size=2, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_prefix_suffix_equals_literal(self, values):
        query = _SumQuery()
        tables = _tables(values)
        fast = exact_local_sensitivity(query, tables)
        slow = literal_local_sensitivity(query, tables)
        assert fast.local_sensitivity == pytest.approx(slow)

    @given(values=st.lists(st.integers(-30, 30), min_size=2, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_removal_outputs_match_definition(self, values):
        query = _SumQuery()
        tables = _tables(values)
        result = exact_local_sensitivity(query, tables)
        total = sum(values)
        for i, row in enumerate(result.removal_outputs):
            assert row[0] == pytest.approx(total - values[i])

    def test_literal_matches_fast_on_real_queries(self):
        tables = TPCHGenerator(TPCHConfig(scale_rows=400, seed=2)).generate()
        from repro.tpch.workload import query_by_name

        for name in ("tpch1", "tpch6", "tpch13"):
            query = query_by_name(name)
            fast = exact_local_sensitivity(query, tables)
            slow = literal_local_sensitivity(query, tables, max_removals=50)
            # literal is capped at 50 removals, so it's a lower bound.
            assert fast.local_sensitivity >= slow - 1e-9


class TestInferenceInvariants:
    @given(
        outputs=st.lists(
            st.floats(-1e4, 1e4, allow_nan=False), min_size=3, max_size=200
        ),
        population=st.integers(10, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_envelope_covers_samples(self, outputs, population):
        arr = np.asarray(outputs).reshape(-1, 1)
        inferred = infer_output_range(arr, population)
        assert inferred.coverage(arr) == 1.0

    @given(
        outputs=st.lists(
            st.floats(-1e4, 1e4, allow_nan=False), min_size=3, max_size=100
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_range_ordering(self, outputs):
        arr = np.asarray(outputs).reshape(-1, 1)
        inferred = infer_output_range(arr, 1000)
        assert inferred.lower[0] <= inferred.upper[0]
        assert inferred.local_sensitivity >= 0

    @given(
        center=st.floats(-100, 100, allow_nan=False),
        spread=st.floats(0.1, 50, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_wider_population_never_shrinks_range(self, center, spread):
        rng = np.random.default_rng(0)
        samples = rng.normal(center, spread, size=500).reshape(-1, 1)
        small = infer_output_range(samples, population=500)
        large = infer_output_range(samples, population=500_000)
        assert large.local_sensitivity >= small.local_sensitivity - 1e-9


class TestLaplaceDPProperty:
    def test_likelihood_ratio_bounded(self):
        """Empirical epsilon of the Laplace mechanism stays near epsilon.

        For outputs of two neighbouring values under Laplace(sens/eps),
        the log density ratio is bounded by eps * |delta| / sens.
        """
        from repro.dp.mechanisms import LaplaceMechanism

        epsilon, sensitivity = 0.5, 2.0
        scale = sensitivity / epsilon
        f_x, f_y = 10.0, 12.0  # |delta| = sensitivity

        def log_density(value, mean):
            return -abs(value - mean) / scale - math.log(2 * scale)

        mech = LaplaceMechanism(epsilon, seed=7)
        worst = 0.0
        for _ in range(2000):
            out = mech.randomize(f_x, sensitivity)
            ratio = log_density(out, f_x) - log_density(out, f_y)
            worst = max(worst, abs(ratio))
        assert worst <= epsilon + 1e-9
