"""Golden regression tests: seeded runs pin exact values.

A reproduction repository must stay reproducible: these tests pin the
exact outputs of seeded pipelines so any accidental change to the
generator, sampling, inference, enforcement or noise paths is caught
immediately.  If a change is *intentional* (e.g. a new estimator
default), update the golden values in the same commit and say so.
"""

import numpy as np
import pytest

from repro.core import UPAConfig, UPASession
from repro.mining import LifeScienceConfig, make_life_science_tables
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.workload import query_by_name


@pytest.fixture(scope="module")
def tables():
    return TPCHGenerator(TPCHConfig(scale_rows=2000, seed=11)).generate()


class TestGoldenDatagen:
    def test_table_sizes(self, tables):
        assert {name: len(rows) for name, rows in tables.items()} == {
            "region": 5,
            "nation": 25,
            "supplier": 50,
            "customer": 62,
            "part": 100,
            "partsupp": 291,
            "orders": 500,
            "lineitem": 2000,
        }

    def test_first_lineitem_stable(self, tables):
        first = tables["lineitem"][0]
        assert first["l_orderkey"] == 1
        assert first["l_linenumber"] == 1
        # spot values pin the RNG stream layout
        assert isinstance(first["l_quantity"], float)
        assert 1 <= first["l_quantity"] <= 50

    def test_query_outputs_stable(self, tables):
        golden = {
            "tpch1": 2000.0,
            "tpch4": 86.0,
            "tpch13": 339.0,
            "tpch16": 35.0,
            "tpch6": 127153.8232,
        }
        for name, expected in golden.items():
            value = float(query_by_name(name).output(tables)[0])
            assert value == pytest.approx(expected, abs=1e-3), name

    def test_ml_dataset_stable(self):
        rows = make_life_science_tables(
            LifeScienceConfig(num_records=100, dim=2, num_clusters=2, seed=5)
        )["points"]
        checksum = sum(sum(r["features"]) + r["label"] for r in rows)
        assert checksum == pytest.approx(checksum)  # finite
        assert len(rows) == 100


class TestGoldenUPA:
    def test_seeded_run_fully_reproducible(self, tables):
        def run():
            session = UPASession(UPAConfig(sample_size=100, seed=77))
            return session.run(query_by_name("tpch6"), tables, epsilon=0.5)

        a, b = run(), run()
        assert a.noisy_scalar() == b.noisy_scalar()
        assert a.local_sensitivity == b.local_sensitivity
        assert np.array_equal(a.removal_outputs, b.removal_outputs)
        assert np.array_equal(a.inferred_range.lower, b.inferred_range.lower)

    def test_count_query_golden_sensitivity(self, tables):
        session = UPASession(UPAConfig(sample_size=100, seed=1))
        result = session.run(query_by_name("tpch1"), tables, epsilon=0.5)
        # counting query: range exactly [C-1, C+1], sensitivity exactly 2
        assert result.local_sensitivity == 2.0
        assert result.estimated_local_sensitivity == 1.0
        assert result.inferred_range.lower[0] == 1999.0
        assert result.inferred_range.upper[0] == 2001.0

    def test_partition_split_stable(self, tables):
        from repro.core.sampling import partition_of

        split = [partition_of(r) for r in tables["lineitem"][:10]]
        assert split == [partition_of(r) for r in tables["lineitem"][:10]]
        assert set(split) <= {0, 1}
