"""Tests for the interprocedural taint pass (UPA3xx) and the shared
dataflow framework (cfg + worklist engine), plus the satellite
machinery that landed with them: inline suppressions, baseline
ratcheting, SARIF rendering, deterministic ordering, and the strict
session gate.

The deliberately leaky script ``examples/leaky_pipeline.py`` is the
ground-truth fixture: every violation line carries a ``# BAD: UPAxxx``
marker and the tests assert the analyzer reports exactly that set.
"""

import ast
import functools
import json
import os
import re

import pytest

from repro import UPAConfig, UPASession, MapReduceQuery, declassify
from repro.common.errors import StaticAnalysisError
from repro.dp import PrivacyAccountant
from repro.staticcheck import (
    Severity,
    build_cfg,
    check_query,
    check_query_taint,
    check_source,
    check_source_taint,
    dedupe,
    env_join,
    lint_paths,
    render_sarif,
    solve_forward,
)
from repro.staticcheck.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
)
from repro.staticcheck.suppress import (
    apply_suppressions,
    collect_suppressions,
)
from repro.staticcheck import taint

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
LEAKY = os.path.join(EXAMPLES_DIR, "leaky_pipeline.py")

CLEAN_EXAMPLES = [
    "quickstart.py",
    "attack_defense.py",
    "grouped_histogram.py",
    "ad_hoc_sql.py",
    "private_ml.py",
    "tpch_private_analytics.py",
]


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCFG:
    def _cfg(self, src):
        return build_cfg(ast.parse(src).body)

    def test_straight_line_single_block(self):
        cfg = self._cfg("a = 1\nb = 2\nc = 3\n")
        populated = [b for b in cfg.blocks_in_order() if b.elements]
        assert len(populated) == 1
        assert len(populated[0].elements) == 3

    def test_if_else_branches_and_join(self):
        cfg = self._cfg("if c:\n    x = 1\nelse:\n    x = 2\ny = x\n")
        guarded = [b for b in cfg.blocks_in_order() if b.guards]
        assert len(guarded) == 2  # then + else
        assert all(g.kind == "if" for b in guarded for g in b.guards)
        # both arms flow into the join block holding `y = x`
        join = [
            b for b in cfg.blocks_in_order()
            if any(isinstance(e, ast.Assign) and e.targets[0].id == "y"
                   for e in b.elements if isinstance(e, ast.Assign))
        ]
        assert len(join) == 1
        assert len(join[0].preds) == 2

    def test_while_has_back_edge(self):
        cfg = self._cfg("while c:\n    x = 1\n")
        back = [
            (b.bid, s) for b in cfg.blocks_in_order() for s in b.succs
            if s < b.bid
        ]
        assert back, "loop body must feed back to the header"

    def test_nested_guards_stack(self):
        cfg = self._cfg(
            "if a:\n    if b:\n        x = 1\n"
        )
        depths = {len(b.guards) for b in cfg.blocks_in_order()}
        assert 2 in depths

    def test_return_edges_to_exit(self):
        cfg = self._cfg("if c:\n    return 1\nx = 2\n")
        exit_preds = cfg.blocks[cfg.exit].preds
        assert len(exit_preds) >= 2  # the return and the fallthrough

    def test_try_body_reaches_handler(self):
        cfg = self._cfg(
            "try:\n    x = f()\nexcept ValueError:\n    x = 0\ny = x\n"
        )
        handler = [
            b for b in cfg.blocks_in_order()
            if any(g.kind == "except" for g in b.guards)
        ]
        assert len(handler) == 1
        assert handler[0].preds  # reachable from the try body


# ---------------------------------------------------------------------------
# Worklist engine
# ---------------------------------------------------------------------------


class TestDataflow:
    def test_branch_labels_join_at_merge(self):
        src = (
            "if c:\n    x = taint()\nelse:\n    x = clean()\ny = x\n"
        )
        cfg = build_cfg(ast.parse(src).body)

        def transfer(block, env):
            env = dict(env)
            for elem in block.elements:
                if isinstance(elem, ast.Assign) and isinstance(
                    elem.value, ast.Call
                ):
                    callee = elem.value.func.id
                    label = (frozenset({"T"}) if callee == "taint"
                             else frozenset())
                    for t in elem.targets:
                        env[t.id] = label | env.get(t.id, frozenset())
                elif isinstance(elem, ast.Assign) and isinstance(
                    elem.value, ast.Name
                ):
                    for t in elem.targets:
                        env[t.id] = env.get(elem.value.id, frozenset())
            return env

        states = solve_forward(cfg, transfer, {}, env_join)
        exit_in = states[cfg.exit][0]
        # x may be tainted (one branch), so y may be tainted too.
        assert "T" in exit_in["x"]
        assert "T" in exit_in["y"]

    def test_loop_reaches_fixed_point(self):
        src = "x = seed()\nwhile c:\n    x = taint()\ny = x\n"
        cfg = build_cfg(ast.parse(src).body)

        def transfer(block, env):
            env = dict(env)
            for elem in block.elements:
                if isinstance(elem, ast.Assign) and isinstance(
                    elem.value, ast.Call
                ):
                    label = (frozenset({"T"})
                             if elem.value.func.id == "taint"
                             else frozenset({"S"}))
                    for t in elem.targets:
                        env[t.id] = label
                elif isinstance(elem, ast.Assign) and isinstance(
                    elem.value, ast.Name
                ):
                    for t in elem.targets:
                        env[t.id] = env.get(elem.value.id, frozenset())
            return env

        states = solve_forward(cfg, transfer, {}, env_join)
        exit_in = states[cfg.exit][0]
        # after the loop, x is the seed (0 iterations) OR tainted.
        assert exit_in["x"] == frozenset({"S", "T"})


# ---------------------------------------------------------------------------
# The leaky fixture: exact findings at exact lines
# ---------------------------------------------------------------------------


def _expected_markers():
    expected = []
    with open(LEAKY, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            match = re.search(r"# BAD: (UPA\d+)", line)
            if match:
                expected.append((match.group(1), lineno))
    return expected


class TestLeakyFixture:
    def test_every_marked_line_is_flagged_and_nothing_else(self):
        expected = set(_expected_markers())
        assert len(expected) >= 9, "fixture must stay comprehensive"
        found = {
            (d.code, d.line) for d in taint.check_file(LEAKY)
        }
        assert found == expected

    def test_fixture_has_each_violation_class(self):
        codes = {code for code, _ in _expected_markers()}
        assert codes == {"UPA301", "UPA302", "UPA303", "UPA304"}

    def test_lint_paths_fails_the_fixture(self):
        diags = lint_paths([LEAKY])
        assert any(d.severity == Severity.ERROR for d in diags)

    def test_exclude_silences_the_fixture(self):
        assert lint_paths([LEAKY], exclude=[LEAKY]) == []

    def test_interprocedural_leak_is_inside_the_helper(self):
        diags = taint.check_file(LEAKY)
        src = open(LEAKY, "r", encoding="utf-8").read().splitlines()
        helper_lines = [
            d.line for d in diags
            if d.code == "UPA301" and "interprocedural" in src[d.line - 1]
        ]
        assert helper_lines, "the dump_rows print must be flagged"


class TestCleanExamples:
    @pytest.mark.parametrize("name", CLEAN_EXAMPLES)
    def test_clean_example_has_no_taint_findings(self, name):
        diags = taint.check_file(os.path.join(EXAMPLES_DIR, name))
        assert diags == []


# ---------------------------------------------------------------------------
# Targeted taint semantics
# ---------------------------------------------------------------------------


class TestTaintSemantics:
    def test_declassify_sanitizes(self):
        src = (
            "tables = make_tables(100)\n"
            "print(declassify(tables['t'][0], reason='reviewed'))\n"
        )
        assert check_source_taint(src, "s.py") == []

    def test_session_run_sanitizes(self):
        src = (
            "tables = make_tables(100)\n"
            "r = session.run(q, tables, epsilon=0.1)\n"
            "print(r)\n"
        )
        assert check_source_taint(src, "s.py") == []

    def test_source_flows_through_fstring(self):
        src = (
            "tables = make_tables(100)\n"
            "row = tables['t'][0]\n"
            "print(f'row={row}')\n"
        )
        codes = [d.code for d in check_source_taint(src, "s.py")]
        assert codes == ["UPA301"]

    def test_registration_marks_variable_protected(self):
        src = (
            "rows = load_rows()\n"
            "sql.create_table('t', rows, schema)\n"
            "print(rows)\n"
        )
        codes = [d.code for d in check_source_taint(src, "s.py")]
        assert codes == ["UPA301"]

    def test_opaque_aggregates_stay_clean(self):
        src = (
            "tables = make_tables(100)\n"
            "print(len(tables['t']))\n"
            "print(query.output(tables)[0])\n"
        )
        assert check_source_taint(src, "s.py") == []

    def test_branch_only_taints_guarded_release(self):
        src = (
            "tables = make_tables(100)\n"
            "v = tables['t'][0]\n"
            "if v > 3:\n"
            "    session.run(q, tables, epsilon=0.1)\n"
            "session.run(q, tables, epsilon=0.1)\n"
        )
        diags = check_source_taint(src, "s.py")
        assert [(d.code, d.line) for d in diags] == [("UPA302", 4)]

    def test_monoid_method_print_is_flagged(self):
        class LeakyQuery(MapReduceQuery):
            name = "leaky-monoid"
            protected_table = "t"

            def map_record(self, record, aux=None):
                print(record)
                return 1.0

            def reduce_batch(self, a, b):
                return a + b

        codes = [d.code for d in check_query_taint(LeakyQuery())]
        assert "UPA301" in codes

    def test_clean_monoid_method_is_not_flagged(self):
        class CleanQuery(MapReduceQuery):
            name = "clean-monoid"
            protected_table = "t"

            def map_record(self, record, aux=None):
                return float(record["v"])

            def reduce_batch(self, a, b):
                return a + b

        assert check_query_taint(CleanQuery()) == []


# ---------------------------------------------------------------------------
# Strict session gate
# ---------------------------------------------------------------------------


class TestStrictGate:
    def _tables(self):
        return {"t": [{"v": float(i)} for i in range(20)]}

    def test_taint_error_blocks_before_any_charge(self):
        class LeakyQuery(MapReduceQuery):
            name = "leaky-gate"
            protected_table = "t"

            def map_record(self, record, aux=None):
                print(record)
                return 1.0

            def reduce_batch(self, a, b):
                return a + b

        accountant = PrivacyAccountant(total_epsilon=1.0)
        session = UPASession(
            UPAConfig(sample_size=4, seed=0, strict=True),
            accountant=accountant,
        )
        with pytest.raises(StaticAnalysisError, match="UPA301"):
            session.run(LeakyQuery(), self._tables(), epsilon=0.5)
        spent = accountant.spent()
        assert not any(spent) if isinstance(spent, tuple) else spent == 0

    def test_clean_query_passes_the_gate(self):
        import random

        import numpy as np

        class CleanQuery(MapReduceQuery):
            name = "clean-gate"
            protected_table = "t"
            output_dim = 1

            def map_record(self, record, aux=None):
                return 1.0

            def zero(self):
                return 0.0

            def combine(self, a, b):
                return a + b

            def finalize(self, agg, aux=None):
                return np.asarray([float(agg)], dtype=float)

            def sample_domain_record(self, rng: random.Random, tables):
                return {"v": rng.randrange(10)}

        session = UPASession(
            UPAConfig(sample_size=4, seed=0, strict=True),
            accountant=PrivacyAccountant(total_epsilon=1.0),
        )
        result = session.run(CleanQuery(), self._tables(), epsilon=0.5)
        assert result.noisy_output is not None


# ---------------------------------------------------------------------------
# UPA006 regression: decorated / partialmethod monoid methods
# ---------------------------------------------------------------------------


class TestSourceUnavailableRegression:
    def test_partialmethod_source_is_found(self):
        class PartialQuery(MapReduceQuery):
            name = "partial-query"
            protected_table = "t"

            def _map_impl(self, record, scale=1.0):
                return {"v": record["v"] * scale}

            map_record = functools.partialmethod(_map_impl, scale=2.0)

            def reduce_batch(self, a, b):
                return {"v": a["v"] + b["v"]}

        codes = [d.code for d in check_query(PartialQuery())]
        assert "UPA006" not in codes

    def test_wraps_chain_source_is_found(self):
        def traced(func):
            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                return func(*args, **kwargs)

            return wrapper

        class WrappedQuery(MapReduceQuery):
            name = "wrapped-query"
            protected_table = "t"

            @traced
            def map_record(self, record, aux=None):
                return float(record["v"])

            def reduce_batch(self, a, b):
                return a + b

        codes = [d.code for d in check_query(WrappedQuery())]
        assert "UPA006" not in codes


# ---------------------------------------------------------------------------
# Ordering / dedupe
# ---------------------------------------------------------------------------


class TestOrderingAndDedupe:
    def test_findings_sorted_by_file_line_col_code(self):
        diags = taint.check_file(LEAKY)
        ordered = dedupe(diags)
        keys = [(d.file, d.line, d.col, d.code) for d in ordered]
        assert keys == sorted(keys)

    def test_identical_findings_collapse(self):
        diags = taint.check_file(LEAKY)
        assert dedupe(diags + diags) == dedupe(diags)

    def test_lint_paths_is_deterministic(self):
        first = lint_paths([LEAKY])
        second = lint_paths([LEAKY])
        assert first == second


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    SRC = (
        "tables = make_tables(100)\n"
        "print(tables['t'][0])  # upalint: disable=UPA301\n"
        "# upalint: disable=UPA301\n"
        "print(tables['t'][1])\n"
        "print(tables['t'][2])\n"
    )

    def _kept(self, src):
        diags = check_source_taint(src, "s.py")
        return apply_suppressions(
            diags, {"s.py": collect_suppressions(src)}
        )

    def test_same_line_and_line_above_suppress(self):
        kept = self._kept(self.SRC)
        assert [(d.code, d.line) for d in kept] == [("UPA301", 5)]

    def test_disable_all(self):
        src = self.SRC.replace("disable=UPA301", "disable=all")
        kept = self._kept(src)
        assert [(d.code, d.line) for d in kept] == [("UPA301", 5)]

    def test_wrong_code_does_not_suppress(self):
        src = self.SRC.replace("disable=UPA301", "disable=UPA302")
        kept = self._kept(src)
        assert len(kept) == 3

    def test_directive_inside_string_is_ignored(self):
        src = (
            "tables = make_tables(100)\n"
            "note = '# upalint: disable=UPA301'\n"
            "print(tables['t'][0])\n"
        )
        kept = self._kept(src)
        assert [(d.code, d.line) for d in kept] == [("UPA301", 3)]

    def test_lint_paths_honours_file_suppressions(self, tmp_path):
        leaky = tmp_path / "leaky.py"
        leaky.write_text(
            "tables = make_tables(100)\n"
            "print(tables['t'][0])  # upalint: disable=UPA301\n"
        )
        assert lint_paths([str(leaky)]) == []


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_missing_baseline_records_and_reports_clean(self, tmp_path):
        path = str(tmp_path / "base.json")
        diags = taint.check_file(LEAKY)
        fresh, wrote = apply_baseline(path, diags)
        assert wrote and fresh == []
        assert load_baseline(path) == {fingerprint(d) for d in diags}

    def test_existing_baseline_filters_known_only(self, tmp_path):
        path = str(tmp_path / "base.json")
        diags = taint.check_file(LEAKY)
        apply_baseline(path, diags[:-1])  # all but the last are known
        fresh, wrote = apply_baseline(path, diags)
        assert not wrote
        assert fresh == [diags[-1]]

    def test_fingerprint_is_line_independent(self):
        import dataclasses

        diags = taint.check_file(LEAKY)
        moved = dataclasses.replace(diags[0], line=diags[0].line + 7)
        assert fingerprint(moved) == fingerprint(diags[0])


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


class TestSarif:
    def test_sarif_document_shape(self):
        diags = taint.check_file(LEAKY)
        doc = json.loads(render_sarif(diags, tool_version="1.3.0"))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "upalint"
        assert run["tool"]["driver"]["version"] == "1.3.0"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"UPA301", "UPA302", "UPA303", "UPA304",
                "UPA305"} <= rule_ids
        assert len(run["results"]) == len(dedupe(diags))

    def test_sarif_result_levels_and_locations(self):
        diags = taint.check_file(LEAKY)
        doc = json.loads(render_sarif(diags))
        by_rule = {}
        for result in doc["runs"][0]["results"]:
            by_rule.setdefault(result["ruleId"], result)
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith(
                "leaky_pipeline.py"
            )
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1
        assert by_rule["UPA301"]["level"] == "error"
        assert by_rule["UPA302"]["level"] == "warning"

    def test_empty_findings_render_valid_sarif(self):
        doc = json.loads(render_sarif([]))
        assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# Budgetflow on the shared engine
# ---------------------------------------------------------------------------


class TestBudgetflowMigration:
    def test_uncharged_session_still_flagged(self):
        src = (
            "s = UPASession(UPAConfig())\n"
            "s.run(q, tables, epsilon=0.1)\n"
        )
        codes = [d.code for d in check_source(src, "s.py")]
        assert codes == ["UPA201"]

    def test_charged_on_one_branch_is_not_flagged(self):
        src = (
            "if cheap:\n"
            "    s = UPASession(UPAConfig())\n"
            "else:\n"
            "    s = UPASession(UPAConfig(), accountant=acct)\n"
            "s.run(q, tables, epsilon=0.1)\n"
        )
        # May-analysis: some path charges, so the release is not
        # *provably* uncharged — stay silent rather than cry wolf.
        assert check_source(src, "s.py") == []

    def test_uncharged_on_all_branches_is_flagged(self):
        src = (
            "if cheap:\n"
            "    s = UPASession(UPAConfig())\n"
            "else:\n"
            "    s = UPASession(UPAConfig())\n"
            "s.run(q, tables, epsilon=0.1)\n"
        )
        codes = [d.code for d in check_source(src, "s.py")]
        assert codes == ["UPA201"]

    def test_rebinding_clears_tracking(self):
        src = (
            "s = UPASession(UPAConfig())\n"
            "s = make_session_with_accountant()\n"
            "s.run(q, tables, epsilon=0.1)\n"
        )
        assert check_source(src, "s.py") == []


# ---------------------------------------------------------------------------
# declassify runtime behavior
# ---------------------------------------------------------------------------


class TestDeclassify:
    def test_identity_at_runtime(self):
        value = {"k": 1}
        assert declassify(value, reason="test") is value

    def test_reason_is_mandatory_and_non_empty(self):
        with pytest.raises(ValueError):
            declassify(1, reason="")
        with pytest.raises(ValueError):
            declassify(1, reason="   ")
        with pytest.raises(TypeError):
            declassify(1)  # reason is keyword-only and required
