"""Smoke tests: the runnable examples must stay runnable.

The two fastest examples run as subprocesses end-to-end; the others are
import-checked (their heavy main() is exercised manually / in docs).
"""

import importlib.util
import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart_runs(self):
        out = _run_example("quickstart.py")
        assert "noisy count (released)" in out
        assert "dpread/mapDP/reduceDP" in out

    def test_attack_defense_runs(self):
        out = _run_example("attack_defense.py")
        assert "detected as attack   : True" in out

    @pytest.mark.parametrize(
        "name",
        ["tpch_private_analytics.py", "private_ml.py", "ad_hoc_sql.py",
         "grouped_histogram.py"],
    )
    def test_other_examples_importable(self, name):
        path = os.path.join(EXAMPLES_DIR, name)
        spec = importlib.util.spec_from_file_location(
            f"example_{name[:-3]}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # imports run; main() does not
        assert hasattr(module, "main")
