"""Tests for the live-monitoring stack: exporters, server, alerts, profiler.

Complements ``tests/test_obs.py`` (post-hoc tracing/metrics/ledger):
here we cover the Prometheus/OTLP exporters against a strict
line-grammar checker, the introspection HTTP server round-tripped
through ``http.client`` on an ephemeral port, alert rules on synthetic
ledgers, the sampling profiler's span attribution, and ledger
crash-safety.
"""

import http.client
import json
import re
import textwrap
import threading
import time

import pytest

from repro.common.config import EngineConfig
from repro.dp.budget import PrivacyAccountant
from repro.engine.context import EngineContext
from repro.engine.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.alerts import (
    AlertEngine,
    BudgetBurnRule,
    ClampRateRule,
    GaugeThresholdRule,
    SensitivityDriftRule,
    WorkerRssRule,
    WorkerStarvationRule,
    default_rules,
)
from repro.obs.crossproc import (
    WORKER_RSS_KB,
    WORKER_TASKS_COMPLETED,
    WORKER_UPTIME_SECONDS,
    WorkerTelemetry,
    merge_telemetry,
    worker_table,
)
from repro.obs.exporters import (
    labeled_name,
    render_otlp_metrics,
    render_otlp_spans,
    render_prometheus,
    sanitize_metric_name,
    split_labeled_name,
)
from repro.obs.ledger import PrivacyLedger, make_entry
from repro.obs.profiler import (
    SamplingProfiler,
    parse_collapsed,
    span_table_from_collapsed,
)
from repro.obs.server import ObservabilityServer
from repro.obs.tracing import Tracer


# ---------------------------------------------------------------------------
# Prometheus line-grammar checker
# ---------------------------------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
_LABELS = r"\{" + _LABEL + r"(?:," + _LABEL + r")*\}"
_VALUE = r"(?:[+-]Inf|NaN|-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)"
_SAMPLE_RE = re.compile(rf"^({_NAME})(?:{_LABELS})? {_VALUE}$")
_HELP_RE = re.compile(rf"^# HELP ({_NAME}) \S.*$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_NAME}) (counter|gauge|summary|histogram|untyped)$"
)


def assert_valid_exposition(text: str) -> dict:
    """Strict structural check of a text-exposition v0.0.4 document.

    Returns ``{metric name: type}`` for the declared families.  Checks:
    trailing newline, every line parses as HELP/TYPE/sample, HELP
    directly precedes TYPE, each family is declared exactly once,
    every sample belongs to a declared family (modulo the summary
    ``_sum``/``_count`` suffixes), and counters end in ``_total``.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    typed = {}
    pending_help = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            m = _HELP_RE.match(line)
            assert m, f"malformed HELP line: {line!r}"
            pending_help = m.group(1)
            continue
        if line.startswith("# TYPE "):
            m = _TYPE_RE.match(line)
            assert m, f"malformed TYPE line: {line!r}"
            name, mtype = m.group(1), m.group(2)
            assert name not in typed, f"duplicate TYPE for {name}"
            assert pending_help == name, f"TYPE {name} not preceded by HELP"
            typed[name] = mtype
            pending_help = None
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        m = _SAMPLE_RE.match(line)
        assert m, f"malformed sample line: {line!r}"
        sample = m.group(1)
        family = None
        for cand in (sample, sample[: -len("_sum")] if
                     sample.endswith("_sum") else sample,
                     sample[: -len("_count")] if
                     sample.endswith("_count") else sample):
            if cand in typed:
                family = cand
                break
        assert family is not None, f"sample {sample} has no TYPE declaration"
        if typed[family] == "counter":
            assert family.endswith("_total"), \
                f"counter {family} missing _total suffix"
    return typed


def _http_get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.getheader("Content-Type"), resp.read()
    finally:
        conn.close()


def _entry(seq, query="q", eps=0.1, sens=1.0, clamped=False,
           cache_hit=False, remaining=None):
    return make_entry(
        sequence=seq, query=query, epsilon_charged=eps, delta=0.0,
        mechanism="laplace", sample_size=10, mean=[0.0], std=[1.0],
        lower=[0.0], upper=[1.0], local_sensitivity=sens,
        estimated_local_sensitivity=sens, clamped=clamped,
        matched_prior=False, records_removed=0,
        accountant_remaining_epsilon=remaining, cache_hit=cache_hit,
    )


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestSanitize:
    def test_dots_become_underscores_with_namespace(self):
        assert sanitize_metric_name("sql.plan_cache.hits", "upa") == \
            "upa_sql_plan_cache_hits"

    def test_leading_digit_prefixed(self):
        name = sanitize_metric_name("5xx.count")
        assert re.match(r"^[a-zA-Z_:]", name)

    def test_empty_name_still_valid(self):
        assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$",
                        sanitize_metric_name(""))


class TestPrometheusExposition:
    def test_golden_document(self):
        snap = MetricsSnapshot(
            counters={"jobs_run": 3.0},
            histograms={"task_seconds": (0.5, 1.5)},
            gauges={"pool.size": 4.0},
        )
        expected = textwrap.dedent("""\
            # HELP upa_jobs_run_total Engine counter jobs_run.
            # TYPE upa_jobs_run_total counter
            upa_jobs_run_total 3
            # HELP upa_pool_size Engine gauge pool.size.
            # TYPE upa_pool_size gauge
            upa_pool_size 4
            # HELP upa_task_seconds Engine histogram task_seconds.
            # TYPE upa_task_seconds summary
            upa_task_seconds{quantile="0.5"} 1
            upa_task_seconds{quantile="0.9"} 1.4
            upa_task_seconds{quantile="0.95"} 1.45
            upa_task_seconds{quantile="0.99"} 1.49
            upa_task_seconds_sum 2
            upa_task_seconds_count 2
            # HELP upa_task_seconds_stddev Population standard deviation of histogram task_seconds.
            # TYPE upa_task_seconds_stddev gauge
            upa_task_seconds_stddev 0.5
        """)
        assert render_prometheus(snap) == expected

    def test_grammar_checker_accepts_rendered_output(self):
        snap = MetricsSnapshot(
            counters={"jobs_run": 3.0, "sql.plan_cache.hits": 1.0},
            histograms={"task_seconds": (0.5, 1.5, 2.5)},
            gauges={"pool.size": 4.0},
        )
        typed = assert_valid_exposition(render_prometheus(snap))
        assert typed["upa_jobs_run_total"] == "counter"
        assert typed["upa_task_seconds"] == "summary"
        assert typed["upa_pool_size"] == "gauge"

    def test_grammar_checker_rejects_malformed(self):
        with pytest.raises(AssertionError):
            assert_valid_exposition("no newline terminator")
        with pytest.raises(AssertionError):
            assert_valid_exposition("bad-name 1\n")
        with pytest.raises(AssertionError):
            assert_valid_exposition("orphan_sample 1\n")

    def test_live_registry_snapshot_renders_clean(self):
        registry = MetricsRegistry()
        registry.incr("jobs_run", 2)
        registry.observe("task_seconds", 0.25)
        registry.set_gauge("scheduler.pool_size", 8)
        assert_valid_exposition(render_prometheus(registry.snapshot()))


class TestOtlpExport:
    def test_metrics_envelope_structure(self):
        snap = MetricsSnapshot(counters={"jobs_run": 3.0},
                               histograms={"task_seconds": (1.0,)},
                               gauges={"g": 2.0})
        doc = json.loads(json.dumps(render_otlp_metrics(snap)))
        scope = doc["resourceMetrics"][0]["scopeMetrics"][0]
        by_name = {m["name"]: m for m in scope["metrics"]}
        assert by_name["jobs_run"]["sum"]["isMonotonic"] is True
        point = by_name["task_seconds"]["summary"]["dataPoints"][0]
        assert point["count"] == 1
        assert {q["quantile"] for q in point["quantileValues"]} == \
            {0.5, 0.9, 0.95, 0.99}
        assert by_name["g"]["gauge"]["dataPoints"][0]["asDouble"] == 2.0

    def test_spans_envelope_structure(self):
        tracer = Tracer()
        with tracer.span("upa.run"):
            with tracer.span("phase:map"):
                pass
        doc = json.loads(json.dumps(render_otlp_spans(tracer)))
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        by_name = {s["name"]: s for s in spans}
        assert set(by_name) == {"upa.run", "phase:map"}
        child = by_name["phase:map"]
        assert child["parentSpanId"] == by_name["upa.run"]["spanId"]
        assert re.match(r"^[0-9a-f]{16}$", child["spanId"])


# ---------------------------------------------------------------------------
# Cross-process telemetry: labelled series, merge, /workers surfaces
# ---------------------------------------------------------------------------


def _telemetry(pid, counters=None, histograms=None, rss=2048.0,
               uptime=1.5, completed=2):
    return WorkerTelemetry(
        pid=pid, parent_span_id=None, wall_epoch=0.0,
        counters=counters or {}, histograms=histograms or {},
        rss_kb=rss, uptime_seconds=uptime, tasks_completed=completed,
    )


class TestLabeledNames:
    def test_round_trip(self):
        raw = labeled_name("task_seconds", worker="123")
        assert raw == "task_seconds#worker=123"
        assert split_labeled_name(raw) == ("task_seconds",
                                           {"worker": "123"})

    def test_labels_sorted_for_stable_series_identity(self):
        assert labeled_name("m", b="2", a="1") == labeled_name("m", a="1",
                                                               b="2")

    def test_unlabelled_name_passes_through(self):
        assert split_labeled_name("plain_name") == ("plain_name", None)


class TestLabeledExposition:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.observe("task_seconds", 0.5)
        registry.incr("rows_scanned", 10.0)
        merge_telemetry(
            _telemetry(101, counters={"rows_scanned": 4.0},
                       histograms={"task_seconds": (0.1, 0.3)}),
            metrics=registry,
        )
        merge_telemetry(
            _telemetry(102, counters={"rows_scanned": 6.0},
                       histograms={"task_seconds": (0.2,)}),
            metrics=registry,
        )
        return registry.snapshot()

    def test_labelled_families_pass_the_grammar_checker(self):
        text = render_prometheus(self._snapshot())
        typed = assert_valid_exposition(text)
        # One family declaration covering labelled + unlabelled members.
        assert typed["upa_task_seconds"] == "summary"
        assert typed["upa_rows_scanned_total"] == "counter"
        assert 'upa_rows_scanned_total{worker="101"} 4' in text
        assert 'quantile="0.5",worker="102"' in text
        assert f'upa_{WORKER_RSS_KB}{{worker="101"}}' in text

    def test_unlabelled_member_renders_first(self):
        text = render_prometheus(self._snapshot())
        lines = [ln for ln in text.splitlines()
                 if ln.startswith("upa_rows_scanned_total")]
        assert lines[0] == "upa_rows_scanned_total 10"

    def test_otlp_points_carry_worker_attributes(self):
        doc = json.loads(json.dumps(render_otlp_metrics(self._snapshot())))
        scope = doc["resourceMetrics"][0]["scopeMetrics"][0]
        by_name = {m["name"]: m for m in scope["metrics"]}
        points = by_name["rows_scanned"]["sum"]["dataPoints"]
        attrs = [
            {a["key"]: a["value"]["stringValue"]
             for a in p.get("attributes", [])}
            for p in points
        ]
        assert {} in attrs  # the driver's unlabelled series
        assert {"worker": "101"} in attrs
        assert {"worker": "102"} in attrs


class TestTelemetryMerge:
    def test_merge_is_order_independent_across_workers(self):
        deltas = [
            _telemetry(101, counters={"rows_scanned": 4.0},
                       histograms={"task_seconds": (0.1, 0.3)}),
            _telemetry(102, counters={"rows_scanned": 6.0},
                       histograms={"task_seconds": (0.2,)}),
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for delta in deltas:
            merge_telemetry(delta, metrics=forward)
        for delta in reversed(deltas):
            merge_telemetry(delta, metrics=backward)
        assert render_prometheus(forward.snapshot()) == \
            render_prometheus(backward.snapshot())

    def test_merge_is_order_independent_within_one_worker(self):
        # Two deltas from the same pid (completion order is not
        # submission order): summaries must not depend on which
        # arrives first.
        first = _telemetry(101, histograms={"task_seconds": (0.1,)},
                           completed=1)
        second = _telemetry(101, histograms={"task_seconds": (0.3, 0.5)},
                            completed=2)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        merge_telemetry(first, metrics=forward)
        merge_telemetry(second, metrics=forward)
        merge_telemetry(second, metrics=backward)
        merge_telemetry(first, metrics=backward)
        # The additive series (histograms, counters) must agree; the
        # health gauges are cumulative snapshots where last-write-wins
        # is the *intended* semantics, so they are excluded.
        series = labeled_name("task_seconds", worker="101")
        assert sorted(forward.snapshot().histograms[series]) == \
            sorted(backward.snapshot().histograms[series])

        def histogram_lines(registry):
            return [ln for ln in
                    render_prometheus(registry.snapshot()).splitlines()
                    if "task_seconds" in ln]

        assert histogram_lines(forward) == histogram_lines(backward)

    def test_none_telemetry_is_a_no_op(self):
        registry = MetricsRegistry()
        merge_telemetry(None, metrics=registry)
        snap = registry.snapshot()
        assert not snap.counters and not snap.gauges and not snap.histograms

    def test_worker_table_rows(self):
        registry = MetricsRegistry()
        merge_telemetry(
            _telemetry(102, histograms={"task_seconds": (0.2,)},
                       rss=4096.0, completed=1),
            metrics=registry,
        )
        merge_telemetry(
            _telemetry(9, histograms={"task_seconds": (0.1, 0.3)},
                       rss=2048.0, completed=2),
            metrics=registry,
        )
        rows = worker_table(registry.snapshot())
        assert [r["worker"] for r in rows] == ["9", "102"]  # numeric order
        nine = rows[0]
        assert nine["rss_kb"] == 2048.0
        assert nine["tasks_completed"] == 2.0
        assert nine["task_seconds"]["count"] == 2

    def test_worker_table_empty_without_labels(self):
        registry = MetricsRegistry()
        registry.set_gauge(WORKER_RSS_KB, 1.0)  # unlabelled: not a worker
        registry.set_gauge(WORKER_UPTIME_SECONDS, 1.0)
        registry.observe("task_seconds", 0.5)
        assert worker_table(registry.snapshot()) == []


class TestObservedRunWorkers:
    def test_from_live_renders_worker_table(self):
        from repro.obs.report import ObservedRun

        registry = MetricsRegistry()
        merge_telemetry(
            _telemetry(101, histograms={"task_seconds": (0.1, 0.3)}),
            metrics=registry,
        )
        observed = ObservedRun.from_live(metrics=registry.snapshot())
        assert observed.to_dict()["workers"][0]["worker"] == "101"
        text = observed.render_text()
        assert "worker processes:" in text
        assert "101" in text

    def test_no_workers_section_without_worker_series(self):
        from repro.obs.report import ObservedRun

        registry = MetricsRegistry()
        registry.observe("task_seconds", 0.5)
        observed = ObservedRun.from_live(metrics=registry.snapshot())
        assert observed.workers == []
        assert "worker processes:" not in observed.render_text()


# ---------------------------------------------------------------------------
# Alert rules on synthetic ledgers
# ---------------------------------------------------------------------------


class TestAlertRules:
    def test_sensitivity_drift_fires_and_degrades(self):
        ledger = PrivacyLedger()
        engine = AlertEngine(rules=[SensitivityDriftRule()])
        engine.attach(ledger)
        for i in range(6):
            ledger.append(_entry(i, sens=1.0))
        assert engine.alerts() == []
        ledger.append(_entry(6, sens=5.0))
        fired = engine.alerts()
        assert len(fired) == 1
        assert fired[0].rule == "sensitivity-drift"
        assert "sensitivity drift" in fired[0].message
        assert engine.degraded is True
        assert engine.firing_rules() == ["sensitivity-drift"]
        header_alerts = ledger.header.get("alerts")
        assert header_alerts and \
            header_alerts[0]["rule"] == "sensitivity-drift"

    def test_drift_silent_below_min_history(self):
        ledger = PrivacyLedger()
        engine = AlertEngine(rules=[SensitivityDriftRule()])
        engine.attach(ledger)
        for i in range(4):
            ledger.append(_entry(i, sens=1.0))
        ledger.append(_entry(4, sens=100.0))
        assert engine.alerts() == []

    def test_drift_nonzero_stddev_uses_z_score(self):
        rule = SensitivityDriftRule(min_history=4)
        history = [_entry(i, sens=s) for i, s in
                   enumerate([1.0, 1.2, 0.8, 1.0])]
        probe = _entry(4, sens=1.1)
        history_plus = history + [probe]
        assert rule.on_entry(probe, history_plus, None) is None
        spike = _entry(5, sens=10.0)
        alert = rule.on_entry(spike, history + [spike], None)
        assert alert is not None
        assert alert.context["z_score"] > 3.0

    def test_budget_burn_from_recorded_balance(self):
        rule = BudgetBurnRule()
        history = [_entry(i, eps=0.1, remaining=1.0) for i in range(3)]
        tail = _entry(3, eps=0.1, remaining=0.05)
        alert = rule.on_entry(tail, history + [tail], None)
        assert alert is not None and alert.severity == "critical"
        assert alert.context["forecast_releases_remaining"] < 1.0

    def test_budget_burn_live_accountant_warning(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        accountant.charge(0.6, label="q")
        rule = BudgetBurnRule()
        history = [_entry(i, eps=0.2) for i in range(3)]
        alert = rule.on_entry(history[-1], history, accountant)
        assert alert is not None and alert.severity == "warning"
        assert alert.context["remaining_epsilon"] == pytest.approx(0.4)

    def test_budget_burn_silent_without_balance(self):
        rule = BudgetBurnRule()
        history = [_entry(i, eps=0.2) for i in range(3)]
        assert rule.on_entry(history[-1], history, None) is None

    def test_clamp_rate_fires_above_threshold(self):
        ledger = PrivacyLedger()
        engine = AlertEngine(rules=[ClampRateRule()])
        engine.attach(ledger)
        for i in range(4):
            ledger.append(_entry(i, clamped=True))
        assert engine.alerts() == []  # below min_entries
        ledger.append(_entry(4, clamped=False))
        fired = engine.alerts()
        assert fired and fired[0].rule == "clamp-rate"
        assert fired[0].context["clamp_rate"] == pytest.approx(0.8)

    def test_cache_hits_do_not_count(self):
        rule = ClampRateRule()
        history = [_entry(i, clamped=True, cache_hit=True)
                   for i in range(10)]
        assert rule.on_entry(history[-1], history, None) is None

    def test_gauge_threshold_dedupes_on_metrics_tick(self):
        engine = AlertEngine(rules=[
            GaugeThresholdRule(metric="queue_depth", max_value=10.0)
        ])
        snap = MetricsSnapshot(gauges={"queue_depth": 50.0})
        first = engine.observe_metrics(snap)
        assert len(first) == 1
        again = engine.observe_metrics(snap)
        assert again == []  # identical firing deduplicated
        assert len(engine.alerts()) == 1

    def test_worker_starvation_fires_when_pool_idles(self):
        rule = WorkerStarvationRule()
        snap = MetricsSnapshot(counters={"process_fallbacks": 2.0})
        alert = rule.on_metrics(snap)
        assert alert is not None and alert.severity == "warning"
        assert alert.context["process_fallbacks"] == 2.0

    def test_worker_starvation_silent_when_workers_complete_tasks(self):
        rule = WorkerStarvationRule()
        snap = MetricsSnapshot(
            counters={"process_fallbacks": 2.0},
            gauges={labeled_name(WORKER_TASKS_COMPLETED, worker="7"): 3.0},
        )
        assert rule.on_metrics(snap) is None

    def test_worker_starvation_silent_off_the_process_backend(self):
        # Thread/inline registries never pre-seed process_fallbacks, so
        # the rule must not fire on its mere absence.
        assert WorkerStarvationRule().on_metrics(MetricsSnapshot()) is None

    def test_worker_rss_names_the_worst_offender(self):
        rule = WorkerRssRule(max_rss_kb=1000.0)
        snap = MetricsSnapshot(gauges={
            labeled_name(WORKER_RSS_KB, worker="7"): 1500.0,
            labeled_name(WORKER_RSS_KB, worker="8"): 2500.0,
            WORKER_RSS_KB: 9999.0,  # unlabelled: not a worker series
        })
        alert = rule.on_metrics(snap)
        assert alert is not None
        assert alert.context["worker"] == "8"
        assert alert.context["rss_kb"] == 2500.0

    def test_worker_rss_silent_under_threshold(self):
        rule = WorkerRssRule(max_rss_kb=1000.0)
        snap = MetricsSnapshot(gauges={
            labeled_name(WORKER_RSS_KB, worker="7"): 999.0,
        })
        assert rule.on_metrics(snap) is None

    def test_default_rules_include_worker_health_pair(self):
        names = {type(r).__name__ for r in default_rules()}
        assert {"WorkerStarvationRule", "WorkerRssRule"} <= names

    def test_replay_synthetic_ledger(self):
        ledger = PrivacyLedger()
        for i in range(6):
            ledger.append(_entry(i, sens=1.0))
        ledger.append(_entry(6, sens=9.0))
        engine = AlertEngine(rules=default_rules())
        fired = engine.replay(ledger)
        assert any(a.rule == "sensitivity-drift" for a in fired)
        assert engine.degraded

    def test_summary_lists_firings(self):
        engine = AlertEngine(rules=[SensitivityDriftRule()])
        ledger = PrivacyLedger()
        engine.attach(ledger)
        for i in range(6):
            ledger.append(_entry(i, sens=1.0))
        ledger.append(_entry(6, sens=5.0))
        summary = engine.summary()
        assert "sensitivity-drift" in summary

    def test_listener_exception_warns_not_raises(self):
        ledger = PrivacyLedger()

        def bad_listener(entry):
            raise ValueError("boom")

        ledger.add_listener(bad_listener)
        with pytest.warns(RuntimeWarning):
            ledger.append(_entry(0))
        assert len(ledger) == 1


# ---------------------------------------------------------------------------
# Ledger crash-safety + append_jsonl
# ---------------------------------------------------------------------------


class TestLedgerCrashSafety:
    def _write_ledger(self, path, n=3):
        ledger = PrivacyLedger()
        for i in range(n):
            ledger.append(_entry(i))
        ledger.write_jsonl(str(path))
        return ledger

    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        self._write_ledger(path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 40])  # chop mid-JSON
        with pytest.warns(RuntimeWarning):
            recovered = PrivacyLedger.read_jsonl(str(path))
        assert len(recovered) == 2
        assert [e.sequence for e in recovered.entries()] == [0, 1]

    def test_blank_lines_skipped_silently(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        self._write_ledger(path)
        lines = path.read_text().splitlines()
        lines.insert(2, "")
        lines.append("   ")
        path.write_text("\n".join(lines) + "\n")
        recovered = PrivacyLedger.read_jsonl(str(path))
        assert len(recovered) == 3

    def test_corrupt_middle_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        self._write_ledger(path)
        lines = path.read_text().splitlines()
        lines[2] = '{"sequence": 1, "query": '  # corrupt entry 1
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning):
            recovered = PrivacyLedger.read_jsonl(str(path))
        assert [e.sequence for e in recovered.entries()] == [0, 2]

    def test_append_jsonl_incremental_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = PrivacyLedger()
        for i in range(3):
            entry = _entry(i)
            ledger.append(entry)
            ledger.append_jsonl(str(path), entry)
        recovered = PrivacyLedger.read_jsonl(str(path))
        assert len(recovered) == 3
        assert recovered.header.get("format") or True  # header present
        # header must be written exactly once
        headers = [ln for ln in path.read_text().splitlines()
                   if '"entries"' not in ln and '"sequence"' not in ln]
        assert len(headers) == 1


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------


class TestSamplingProfiler:
    def test_attributes_samples_to_phase_span(self):
        tracer = Tracer()
        prof = SamplingProfiler(hz=400.0)
        prof.start()
        try:
            with tracer.span("upa.run"):
                with tracer.span("phase:reduce"):
                    deadline = time.monotonic() + 0.4
                    acc = 0
                    while time.monotonic() < deadline:
                        acc += sum(range(200))
        finally:
            prof.stop()
        assert prof.sample_count >= 1
        table = {name: count for name, count, _ in prof.span_table()}
        assert any(name.startswith("phase:") for name in table)
        assert table.get("phase:reduce", 0) >= 1
        collapsed = prof.collapsed_stacks()
        assert any(line.startswith("upa.run;phase:reduce;")
                   for line in collapsed.splitlines())

    def test_collapsed_round_trip(self):
        text = "upa.run;phase:map;f (m.py:3) 7\nidle (t.py:1) 2\n"
        stacks = parse_collapsed(text)
        assert (("upa.run", "phase:map", "f (m.py:3)"), 7) in stacks
        # samples attribute to the innermost span of the chain
        table = {name: count for name, count, _ in
                 span_table_from_collapsed(text)}
        assert table == {"phase:map": 7}
        with_rate = span_table_from_collapsed(text, interval=0.01)
        assert with_rate[0][2] == pytest.approx(0.07)

    def test_parse_collapsed_tolerates_garbage(self):
        stacks = parse_collapsed("\nnot a count line\nf (a.py:1) 3\n")
        assert stacks == [(("f (a.py:1)",), 3)]

    def test_write_and_reset(self, tmp_path):
        prof = SamplingProfiler(hz=500.0, include_idle=True)
        with prof:
            time.sleep(0.2)
        assert prof.sample_count >= 1
        out = tmp_path / "prof.txt"
        prof.write_collapsed(str(out))
        assert out.read_text().strip()
        prof.reset()
        assert prof.sample_count == 0
        assert prof.collapsed_stacks() == ""

    def test_context_manager_and_idempotent_start(self):
        prof = SamplingProfiler(hz=200.0)
        assert prof.start() is prof
        assert prof.start() is prof  # no second thread
        assert prof.running
        prof.stop()
        assert not prof.running


# ---------------------------------------------------------------------------
# Introspection server round-trip over HTTP
# ---------------------------------------------------------------------------


@pytest.fixture()
def full_server():
    registry = MetricsRegistry()
    registry.incr("jobs_run", 2)
    registry.observe("task_seconds", 0.5)
    tracer = Tracer()
    with tracer.span("upa.run"):
        with tracer.span("phase:map"):
            pass
    ledger = PrivacyLedger()
    engine = AlertEngine(rules=default_rules())
    engine.attach(ledger)
    for i in range(6):
        ledger.append(_entry(i, sens=1.0))
    accountant = PrivacyAccountant(total_epsilon=10.0)
    accountant.charge(1.0, label="q")
    profiler = SamplingProfiler(hz=200.0, include_idle=True)
    with profiler:
        time.sleep(0.05)
    server = ObservabilityServer(
        metrics=registry, tracer=tracer, ledger=ledger,
        accountants=accountant, alerts=engine, profiler=profiler,
    ).start()
    yield server, registry, ledger, engine
    server.stop()


class TestObservabilityServer:
    def test_ephemeral_port_and_url(self, full_server):
        server, _, _, _ = full_server
        assert server.running
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint_valid_exposition(self, full_server):
        server, _, _, _ = full_server
        status, ctype, body = _http_get(server.port, "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        typed = assert_valid_exposition(body.decode("utf-8"))
        assert typed["upa_jobs_run_total"] == "counter"
        assert "upa_budget_remaining_epsilon" in typed
        assert "upa_server_requests_total" in typed
        assert "upa_health_degraded" in typed

    def test_metrics_otlp_format(self, full_server):
        server, _, _, _ = full_server
        status, ctype, body = _http_get(server.port, "/metrics?format=otlp")
        assert status == 200
        assert ctype.startswith("application/json")
        assert "resourceMetrics" in json.loads(body)

    def test_healthz_ok_then_degraded(self, full_server):
        server, _, ledger, engine = full_server
        status, _, body = _http_get(server.port, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        ledger.append(_entry(6, sens=50.0))  # trigger drift
        assert engine.degraded
        status, _, body = _http_get(server.port, "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert "sensitivity-drift" in payload["firing_rules"]

    def test_ledger_tail_and_since(self, full_server):
        server, _, _, _ = full_server
        status, ctype, body = _http_get(server.port, "/ledger?n=2")
        assert status == 200
        assert ctype.startswith("application/x-ndjson")
        lines = [json.loads(ln) for ln in body.decode().splitlines()]
        assert lines[0]["format"] == PrivacyLedger.FORMAT  # header first
        assert [ln["sequence"] for ln in lines[1:]] == [4, 5]
        status, _, body = _http_get(server.port, "/ledger?since=3")
        lines = [json.loads(ln) for ln in body.decode().splitlines()]
        assert [ln["sequence"] for ln in lines[1:]] == [4, 5]

    def test_traces_chrome_and_otlp(self, full_server):
        server, _, _, _ = full_server
        status, _, body = _http_get(server.port, "/traces")
        assert status == 200
        events = json.loads(body)["traceEvents"]
        assert any(e.get("name") == "phase:map" for e in events)
        status, _, body = _http_get(server.port, "/traces?format=otlp")
        assert status == 200
        assert "resourceSpans" in json.loads(body)

    def test_budget_endpoint(self, full_server):
        server, _, _, _ = full_server
        status, _, body = _http_get(server.port, "/budget")
        assert status == 200
        accountants = json.loads(body)["accountants"]
        assert accountants["default"]["total_epsilon"] == 10.0
        assert accountants["default"]["spent_epsilon"] == pytest.approx(1.0)

    def test_profile_endpoint(self, full_server):
        server, _, _, _ = full_server
        status, ctype, body = _http_get(server.port, "/profile")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert body.decode().strip()

    def test_index_and_404(self, full_server):
        server, _, _, _ = full_server
        status, _, body = _http_get(server.port, "/")
        assert status == 200
        status, _, _ = _http_get(server.port, "/nope")
        assert status == 404

    def test_workers_endpoint(self):
        registry = MetricsRegistry()
        merge_telemetry(
            _telemetry(101, histograms={"task_seconds": (0.1, 0.3)},
                       rss=2048.0, uptime=1.5, completed=2),
            metrics=registry,
        )
        server = ObservabilityServer(metrics=registry).start()
        try:
            status, ctype, body = _http_get(server.port, "/workers")
            assert status == 200
            assert ctype.startswith("application/json")
            payload = json.loads(body)
            assert payload["count"] == 1
            row = payload["workers"][0]
            assert row["worker"] == "101"
            assert row["rss_kb"] == 2048.0
            assert row["task_seconds"]["count"] == 2
        finally:
            server.stop()

    def test_unwired_sources_404(self):
        server = ObservabilityServer(metrics=MetricsRegistry()).start()
        try:
            for path in ("/ledger", "/traces", "/budget", "/profile"):
                status, _, _ = _http_get(server.port, path)
                assert status == 404, path
        finally:
            server.stop()

    def test_workers_404_without_metrics(self):
        server = ObservabilityServer(tracer=Tracer()).start()
        try:
            status, _, _ = _http_get(server.port, "/workers")
            assert status == 404
        finally:
            server.stop()

    def test_handler_error_returns_500(self):
        class Broken:
            def snapshot(self):
                raise RuntimeError("boom")

        server = ObservabilityServer(metrics=Broken()).start()
        try:
            status, _, _ = _http_get(server.port, "/metrics")
            assert status == 500
        finally:
            server.stop()

    def test_stop_is_idempotent_and_context_manager(self):
        with ObservabilityServer(metrics=MetricsRegistry()) as server:
            assert server.running
            port = server.port
        assert not server.running
        server.stop()  # second stop is a no-op
        with pytest.raises(OSError):
            _http_get(port, "/metrics")


# ---------------------------------------------------------------------------
# Thread-safety: scheduler pool hammers the registry during scrapes
# ---------------------------------------------------------------------------


class TestScrapeThreadSafety:
    def test_metrics_scrape_during_pool_jobs(self):
        ctx = EngineContext(EngineConfig(use_threads=True, max_workers=4))
        server = ctx.serve(port=0)
        errors = []
        bodies = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    status, _, body = _http_get(server.port, "/metrics")
                    if status != 200:
                        errors.append(f"status {status}")
                    else:
                        bodies.append(body.decode("utf-8"))
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

        scrapers = [threading.Thread(target=scrape) for _ in range(3)]
        for t in scrapers:
            t.start()
        try:
            for _ in range(8):
                out = ctx.parallelize(range(200), 8).map(
                    lambda v: v * 2
                ).collect()
                assert len(out) == 200
        finally:
            stop.set()
            for t in scrapers:
                t.join(timeout=10)
        ctx.stop()
        assert not errors
        assert bodies
        # every concurrent scrape must still be grammatical
        for body in bodies[-3:]:
            assert_valid_exposition(body)
        assert "upa_jobs_run_total" in bodies[-1]


# ---------------------------------------------------------------------------
# Embedding: EngineContext.serve / UPASession.serve
# ---------------------------------------------------------------------------


class TestEmbedding:
    def test_engine_context_serve_idempotent_and_stops(self):
        ctx = EngineContext()
        server = ctx.serve(port=0)
        assert ctx.serve(port=0) is server
        status, _, _ = _http_get(server.port, "/metrics")
        assert status == 200
        ctx.stop()
        assert not server.running
        assert ctx.obs_server is None

    def test_session_serve_wires_everything(self):
        from repro.core.session import UPAConfig, UPASession
        from repro.workloads import workload_by_name

        workload = workload_by_name("tpch1")
        tables = workload.make_tables(200, 0)
        session = UPASession(
            UPAConfig(epsilon=1.0, sample_size=30, seed=3),
            accountant=PrivacyAccountant(total_epsilon=100.0),
            tracer=Tracer(),
            ledger=PrivacyLedger(),
        )
        server = session.serve(port=0)
        assert session.serve(port=0) is server  # idempotent
        assert session.alert_engine is not None
        try:
            session.run(workload.query, tables)
            status, _, body = _http_get(server.port, "/metrics")
            assert status == 200
            assert_valid_exposition(body.decode("utf-8"))
            status, _, body = _http_get(server.port, "/ledger?n=5")
            assert status == 200
            lines = body.decode().splitlines()
            assert len(lines) >= 2  # header + the run's entry
            assert json.loads(lines[-1])["query"] == "tpch1"
            status, _, body = _http_get(server.port, "/budget")
            assert status == 200
            assert "session" in json.loads(body)["accountants"]
            status, _, _ = _http_get(server.port, "/healthz")
            assert status == 200
        finally:
            session.engine.stop()
        assert not server.running

    def test_attach_alerts_idempotent(self):
        from repro.core.session import UPAConfig, UPASession

        session = UPASession(UPAConfig(sample_size=10, seed=0),
                             ledger=PrivacyLedger())
        engine = session.attach_alerts()
        assert session.attach_alerts() is engine
