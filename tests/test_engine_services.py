"""Tests for engine services: storage, broadcast, accumulators,
partitioners, metrics, fault injection + lineage recovery."""

import pytest

from repro.common.config import EngineConfig
from repro.common.errors import TaskFailedError
from repro.engine import EngineContext, FaultInjector
from repro.engine.accumulator import int_accumulator
from repro.engine.metrics import MetricsRegistry, MetricsSnapshot
from repro.engine.partitioner import HashPartitioner, RangePartitioner, _portable_hash
from repro.engine.storage import BlockStore


class TestBlockStoreAndCaching:
    def test_cache_serves_second_read(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda v: v + 1).cache()
        rdd.collect()
        hits_before = ctx.metrics.get(MetricsRegistry.CACHE_HITS)
        rdd.collect()
        assert ctx.metrics.get(MetricsRegistry.CACHE_HITS) >= hits_before + 2

    def test_unpersist_drops_blocks(self, ctx):
        rdd = ctx.parallelize(range(4), 2).cache()
        rdd.collect()
        assert len(ctx.block_store) == 2
        rdd.unpersist()
        assert len(ctx.block_store) == 0

    def test_cached_result_identical(self, ctx):
        rdd = ctx.parallelize(range(100), 4).map(lambda v: v * 3).cache()
        assert rdd.collect() == rdd.collect()

    def test_lru_eviction(self):
        store = BlockStore(capacity_blocks=2, metrics=MetricsRegistry())
        store.put((1, 0), [1])
        store.put((1, 1), [2])
        store.get((1, 0))  # refresh block (1,0)
        store.put((1, 2), [3])  # evicts LRU block (1,1)
        assert store.contains((1, 0))
        assert not store.contains((1, 1))
        assert store.contains((1, 2))

    def test_dropped_block_recomputed_from_lineage(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda v: v * v).cache()
        expected = rdd.collect()
        assert ctx.block_store.drop((rdd.rdd_id, 0))
        assert rdd.collect() == expected

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BlockStore(0, MetricsRegistry())

    def test_evict_rdd_counts(self):
        store = BlockStore(10, MetricsRegistry())
        store.put((5, 0), [])
        store.put((5, 1), [])
        store.put((6, 0), [])
        assert store.evict_rdd(5) == 2
        assert store.contains((6, 0))


class TestBroadcastAndAccumulators:
    def test_broadcast_value_visible_in_tasks(self, ctx):
        lookup = ctx.broadcast({1: "one", 2: "two"})
        out = ctx.parallelize([1, 2, 1]).map(lambda v: lookup.value[v]).collect()
        assert out == ["one", "two", "one"]

    def test_broadcast_destroy(self, ctx):
        b = ctx.broadcast([1, 2, 3])
        b.destroy()
        with pytest.raises(RuntimeError):
            _ = b.value

    def test_broadcast_metrics(self, ctx):
        before = ctx.metrics.get(MetricsRegistry.BROADCAST_RECORDS)
        ctx.broadcast(list(range(50)))
        assert ctx.metrics.get(MetricsRegistry.BROADCAST_RECORDS) == before + 50

    def test_int_accumulator(self):
        acc = int_accumulator(5)
        acc.add(3)
        acc.add(2)
        assert acc.value == 10

    def test_accumulator_custom_combine(self, ctx):
        acc = ctx.accumulator([], lambda a, b: a + b)
        ctx.parallelize([[1], [2]], 2).foreach(acc.add)
        assert sorted(acc.value) == [1, 2]


class TestPartitioners:
    def test_hash_partitioner_stable(self):
        p = HashPartitioner(8)
        assert p.partition("hello") == p.partition("hello")
        assert p.partition(("a", 1)) == p.partition(("a", 1))

    def test_hash_partitioner_range(self):
        p = HashPartitioner(4)
        for key in ["x", 0, 3.5, None, ("t", 2), True]:
            assert 0 <= p.partition(key) < 4

    def test_int_float_hash_consistent(self):
        # 2 and 2.0 are equal keys and must co-locate.
        assert _portable_hash(2) == _portable_hash(2.0)

    def test_date_hash_deterministic(self):
        import datetime

        d = datetime.date(1995, 6, 1)
        assert _portable_hash(d) == d.toordinal()

    def test_range_partitioner(self):
        p = RangePartitioner([10, 20])
        assert p.num_partitions == 3
        assert p.partition(5) == 0
        assert p.partition(15) == 1
        assert p.partition(25) == 2

    def test_range_partitioner_descending(self):
        p = RangePartitioner([10, 20], ascending=False)
        assert p.partition(5) == 2
        assert p.partition(25) == 0

    def test_partitioner_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)
        assert RangePartitioner([1]) != HashPartitioner(2)

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestMetrics:
    def test_snapshot_diff(self):
        metrics = MetricsRegistry()
        metrics.incr("x", 5)
        first = metrics.snapshot()
        metrics.incr("x", 2)
        metrics.incr("y")
        delta = metrics.snapshot().diff(first)
        assert delta.get("x") == 2
        assert delta.get("y") == 1

    def test_cache_hit_rate(self):
        metrics = MetricsRegistry()
        assert metrics.cache_hit_rate() == 0.0
        metrics.incr(MetricsRegistry.CACHE_HITS, 3)
        metrics.incr(MetricsRegistry.CACHE_MISSES, 1)
        assert metrics.cache_hit_rate() == 0.75

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.incr("a")
        metrics.reset()
        assert metrics.get("a") == 0.0

    def test_network_cost_model(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(20)], 2)
        before = ctx.metrics.get(MetricsRegistry.NETWORK_COST)
        pairs.partition_by(HashPartitioner(2)).collect()
        cost = ctx.metrics.get(MetricsRegistry.NETWORK_COST) - before
        assert cost == pytest.approx(20 * ctx.config.shuffle_record_cost)


class TestFaultToleranceAndScheduling:
    def test_results_identical_under_faults(self):
        clean = EngineContext()
        expected = (
            clean.parallelize(range(200), 8).map(lambda v: v * 7).sum()
        )
        faulty = EngineContext()
        faulty.install_fault_injector(
            FaultInjector(failure_probability=0.4, max_failures=20, seed=3)
        )
        actual = faulty.parallelize(range(200), 8).map(lambda v: v * 7).sum()
        assert actual == expected
        assert faulty.metrics.get(MetricsRegistry.TASK_RETRIES) > 0

    def test_shuffle_survives_faults(self):
        faulty = EngineContext(EngineConfig(max_task_retries=8))
        faulty.install_fault_injector(
            FaultInjector(failure_probability=0.3, max_failures=10, seed=8)
        )
        out = dict(
            faulty.parallelize([(i % 3, 1) for i in range(30)], 5)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert out == {0: 10, 1: 10, 2: 10}

    def test_exceeding_retry_limit_aborts(self):
        config = EngineConfig(max_task_retries=2)
        engine = EngineContext(config)
        engine.install_fault_injector(FaultInjector(failure_probability=1.0, seed=0))
        with pytest.raises(TaskFailedError):
            engine.parallelize([1, 2, 3], 1).collect()

    def test_fault_injector_budget(self):
        injector = FaultInjector(failure_probability=1.0, max_failures=2, seed=0)
        failures = 0
        for attempt in range(10):
            try:
                injector.maybe_fail(1, 0, attempt)
            except Exception:
                failures += 1
        assert failures == 2

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultInjector(failure_probability=1.5)

    def test_threaded_results_match_sequential(self, threaded_ctx):
        expected = sum(v * v for v in range(500))
        actual = threaded_ctx.parallelize(range(500), 8).map(lambda v: v * v).sum()
        assert actual == expected

    def test_jobs_counted(self, ctx):
        before = ctx.metrics.get(MetricsRegistry.JOBS)
        ctx.parallelize([1], 1).collect()
        assert ctx.metrics.get(MetricsRegistry.JOBS) == before + 1
