"""Tests for the Table I operator API (dpread / DPObject / DPObjectKV)."""

import pytest

from repro.common.errors import DPError
from repro.core.dpobject import dpread
from repro.engine import EngineContext
from repro.engine.metrics import MetricsRegistry


@pytest.fixture
def engine():
    return EngineContext()


class TestDpread:
    def test_split_sizes(self, engine):
        dpo = dpread(engine.parallelize(range(100)), sample_size=10, seed=0)
        assert len(dpo.sampled) == 10
        assert dpo.remaining.count() == 90

    def test_sample_capped_at_dataset(self, engine):
        dpo = dpread(engine.parallelize(range(5)), sample_size=100, seed=0)
        assert len(dpo.sampled) == 5
        assert dpo.remaining.count() == 0

    def test_invalid_sample_size(self, engine):
        with pytest.raises(DPError):
            dpread(engine.parallelize([1]), sample_size=0)

    def test_deterministic(self, engine):
        a = dpread(engine.parallelize(range(50)), 5, seed=9)
        b = dpread(engine.parallelize(range(50)), 5, seed=9)
        assert a.sampled == b.sampled

    def test_partition_is_disjoint_and_complete(self, engine):
        dpo = dpread(engine.parallelize(range(30)), 7, seed=2)
        merged = sorted(dpo.sampled + dpo.remaining.collect())
        assert merged == list(range(30))


class TestReduceDP:
    def test_count_semantics(self, engine):
        dpo = dpread(engine.parallelize(range(100)), 10, seed=1)
        neighbours, total = dpo.map_dp(lambda _v: 1).reduce_dp(
            lambda a, b: a + b
        )
        assert total == 100
        assert neighbours == [99] * 10

    def test_sum_neighbours_exact(self, engine):
        data = list(range(20))
        dpo = dpread(engine.parallelize(data), 4, seed=3)
        neighbours, total = dpo.reduce_dp(lambda a, b: a + b)
        assert total == sum(data)
        for sampled_value, neighbour in zip(dpo.sampled, neighbours):
            assert neighbour == sum(data) - sampled_value

    def test_map_then_reduce(self, engine):
        dpo = dpread(engine.parallelize(range(10)), 2, seed=0)
        neighbours, total = dpo.map_dp(lambda v: v * v).reduce_dp(
            lambda a, b: a + b
        )
        squares = sum(v * v for v in range(10))
        assert total == squares
        for sampled_value, neighbour in zip(dpo.sampled, neighbours):
            assert neighbour == squares - sampled_value * sampled_value

    def test_all_sampled_no_remaining(self, engine):
        dpo = dpread(engine.parallelize([3, 4]), 2, seed=0)
        neighbours, total = dpo.reduce_dp(lambda a, b: a + b)
        assert total == 7
        assert sorted(neighbours) == [3, 4]


class TestReduceByKeyDP:
    def test_full_map_correct(self, engine):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 5), ("b", 7)]
        kv = dpread(engine.parallelize(pairs), 2, seed=1).as_kv()
        _neigh, full = kv.reduce_by_key_dp(lambda a, b: a + b)
        assert full == {"a": 4, "b": 9, "c": 5}

    def test_neighbour_maps_reflect_removal(self, engine):
        pairs = [("a", 1), ("a", 3), ("a", 5)]
        kv = dpread(engine.parallelize(pairs), 2, seed=4).as_kv()
        neighbour_maps, full = kv.reduce_by_key_dp(lambda a, b: a + b)
        assert full == {"a": 9}
        for (key, value), neighbour in zip(kv.sampled, neighbour_maps):
            assert neighbour == {"a": 9 - value}

    def test_key_vanishes_when_last_value_removed(self, engine):
        pairs = [("solo", 42), ("other", 1), ("other", 2)]
        kv = dpread(engine.parallelize(pairs), 3, seed=0).as_kv()
        neighbour_maps, _full = kv.reduce_by_key_dp(lambda a, b: a + b)
        solo_entries = [
            m for (k, _v), m in zip(kv.sampled, neighbour_maps) if k == "solo"
        ]
        for entry in solo_entries:
            assert entry == {"solo": None}

    def test_map_dp_kv(self, engine):
        pairs = [("a", 1), ("b", 2)]
        kv = dpread(engine.parallelize(pairs), 1, seed=0).as_kv()
        doubled = kv.map_dp_kv(lambda kv_: (kv_[0], kv_[1] * 2))
        _neigh, full = doubled.reduce_by_key_dp(lambda a, b: a + b)
        assert full == {"a": 2, "b": 4}

    def test_broadcasts_counted(self, engine):
        pairs = [("a", i) for i in range(10)]
        kv = dpread(engine.parallelize(pairs), 2, seed=0).as_kv()
        before = engine.metrics.get(MetricsRegistry.BROADCASTS)
        kv.reduce_by_key_dp(lambda a, b: a + b)
        assert engine.metrics.get(MetricsRegistry.BROADCASTS) == before + 2


class TestJoinDP:
    def test_total_count_matches_vanilla_join(self, engine):
        left_data = [(i % 4, f"l{i}") for i in range(20)]
        right_data = [(i % 4, f"r{i}") for i in range(12)]
        vanilla = (
            engine.parallelize(left_data).join(engine.parallelize(right_data))
        ).count()
        left = dpread(engine.parallelize(left_data), 5, seed=1).as_kv()
        right = dpread(engine.parallelize(right_data), 3, seed=2).as_kv()
        assert left.join_dp(right).count() == vanilla

    def test_two_shuffle_rounds(self, engine):
        """Paper section V-C: joinDP triggers more shuffles than vanilla."""
        left_data = [(i % 3, i) for i in range(15)]
        right_data = [(i % 3, -i) for i in range(9)]

        vanilla_engine = EngineContext()
        before = vanilla_engine.metrics.get(MetricsRegistry.SHUFFLES)
        vanilla_engine.parallelize(left_data).join(
            vanilla_engine.parallelize(right_data)
        ).count()
        vanilla_shuffles = (
            vanilla_engine.metrics.get(MetricsRegistry.SHUFFLES) - before
        )

        left = dpread(engine.parallelize(left_data), 3, seed=1).as_kv()
        right = dpread(engine.parallelize(right_data), 2, seed=2).as_kv()
        before = engine.metrics.get(MetricsRegistry.SHUFFLES)
        left.join_dp(right).count()
        dp_shuffles = engine.metrics.get(MetricsRegistry.SHUFFLES) - before
        assert dp_shuffles > vanilla_shuffles

    def test_influence_tracking(self, engine):
        left_data = [(1, "a"), (1, "b"), (2, "c")]
        right_data = [(1, "x"), (1, "y")]
        left = dpread(engine.parallelize(left_data), 1, seed=7).as_kv()
        right = dpread(engine.parallelize(right_data), 1, seed=8).as_kv()
        result = left.join_dp(right)
        sampled_key = left.sampled[0][0]
        influence = result.influence_of_left(0)
        if sampled_key == 1:
            # the sampled left tuple joins with both right tuples
            assert len(influence) == 2
        else:
            assert influence == []

    def test_influence_of_right(self, engine):
        left_data = [(1, "a")] * 3
        right_data = [(1, "x")]
        left = dpread(engine.parallelize(left_data), 1, seed=0).as_kv()
        right = dpread(engine.parallelize(right_data), 1, seed=0).as_kv()
        result = left.join_dp(right)
        # right record 0 (the only one, sampled) joins all left rows
        assert len(result.influence_of_right(0)) == 3
