"""Last-mile coverage: spots the main suites touch only implicitly."""

import numpy as np
import pytest

from repro.common.errors import QueryShapeError
from repro.core.sqlbridge import compile_sql
from repro.sql import SQLSession, col, count_star
from repro.sql.logical import Union
from repro.sql.optimizer import optimize


class TestSqlBridgeMore:
    @pytest.fixture
    def tables(self):
        return {
            "t": [{"v": i, "g": i % 2} for i in range(12)],
            "u": [{"v": 100 + i, "g": i % 2} for i in range(4)],
        }

    def test_union_all_rejected(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql(
                "SELECT COUNT(*) AS n FROM t UNION ALL "
                "SELECT COUNT(*) AS n FROM u",
                tables, "t",
            )

    def test_limit_over_protected_rejected(self, tables):
        session = SQLSession()
        session.create_table("t", tables["t"])
        df = session.table("t").limit(3).agg(count_star("n"))
        from repro.core.sqlbridge import compile_plan

        with pytest.raises(QueryShapeError):
            compile_plan(df.plan, tables, "t")

    def test_distinct_over_protected_rejected(self, tables):
        session = SQLSession()
        session.create_table("t", tables["t"])
        df = session.table("t").select("g").distinct().agg(count_star("n"))
        from repro.core.sqlbridge import compile_plan

        with pytest.raises(QueryShapeError):
            compile_plan(df.plan, tables, "t")

    def test_sum_of_expression_on_protected_path(self, tables):
        query = compile_sql(
            "SELECT SUM(v * 2) AS s FROM t WHERE g = 0", tables, "t"
        )
        expected = sum(i * 2 for i in range(12) if i % 2 == 0)
        assert query.output(tables)[0] == expected


class TestOptimizerUnion:
    def test_union_survives_optimization(self):
        session = SQLSession()
        session.create_table("a", [{"x": 1, "y": 2}])
        session.create_table("b", [{"x": 3, "y": 4}])
        df = session.table("a").union_all(session.table("b")).select("x")
        plan = optimize(df.plan)
        assert any(isinstance(node, Union) for node in plan.walk())
        assert df.collect() == [{"x": 1}, {"x": 3}]


class TestCliCompareUnsupported:
    def test_compare_ml_workload_shows_unsupported(self, capsys):
        from repro.cli import main

        assert main(["compare", "kmeans", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "unsupported" in out


class TestDistributionStudyDetails:
    def test_width_ratio_positive(self, tpch_tables):
        from repro.analysis import study_neighbourhood
        from repro.tpch.workload import query_by_name

        study = study_neighbourhood(
            query_by_name("tpch6"), tpch_tables,
            sample_sizes=(100,), addition_samples=50,
        )
        entry = study.ranges[0]
        assert entry.width_ratio > 0
        assert entry.sample_size == 100

    def test_truth_envelope_matches_bruteforce(self, tpch_tables):
        from repro.analysis import study_neighbourhood
        from repro.baselines import exact_local_sensitivity
        from repro.tpch.workload import query_by_name

        study = study_neighbourhood(
            query_by_name("tpch1"), tpch_tables,
            sample_sizes=(50,), addition_samples=50, seed=0,
        )
        direct = exact_local_sensitivity(
            query_by_name("tpch1"), tpch_tables,
            addition_samples=50, seed=0,
        )
        assert study.truth.range_width == direct.range_width


class TestEngineMisc:
    def test_union_of_many(self, ctx):
        rdds = [ctx.parallelize([i], 1) for i in range(5)]
        assert sorted(ctx.union(rdds).collect()) == [0, 1, 2, 3, 4]

    def test_union_of_none(self, ctx):
        assert ctx.union([]).collect() == []

    def test_clear_shuffle_state(self, ctx):
        pairs = ctx.parallelize([("a", 1)], 1)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        reduced.collect()
        ctx.clear_shuffle_state()
        # shuffle state dropped: recomputes transparently
        assert reduced.collect() == [("a", 1)]
