"""Tests for the SQL-to-UPA provenance compiler.

The strongest check: for every hand-written TPC-H workload, compiling
its *SQL text* with the same protected table yields identical
per-record contributions and identical query output.
"""

import random

import numpy as np
import pytest

from repro.common.errors import QueryShapeError
from repro.core import UPAConfig, UPASession
from repro.core.sqlbridge import compile_plan, compile_sql
from repro.sql import SQLSession, col, count_star, sum_
from repro.tpch.workload import all_queries


class TestCompileBasics:
    @pytest.fixture
    def tables(self):
        return {
            "t": [{"v": i, "g": i % 3} for i in range(30)],
            "d": [{"k": g, "w": g * 10} for g in range(3)],
        }

    def test_plain_count(self, tables):
        query = compile_sql("SELECT COUNT(*) AS n FROM t", tables, "t")
        assert query.output(tables)[0] == 30
        assert query.contribution(tables["t"][0]) == 1.0

    def test_filtered_count(self, tables):
        query = compile_sql(
            "SELECT COUNT(*) AS n FROM t WHERE v >= 10", tables, "t"
        )
        assert query.output(tables)[0] == 20
        assert query.contribution({"v": 3, "g": 0}) == 0.0
        assert query.contribution({"v": 25, "g": 1}) == 1.0

    def test_sum_query(self, tables):
        query = compile_sql(
            "SELECT SUM(v * 2) AS s FROM t WHERE g = 0", tables, "t"
        )
        expected = sum(i * 2 for i in range(30) if i % 3 == 0)
        assert query.output(tables)[0] == expected

    def test_join_protected_left(self, tables):
        query = compile_sql(
            "SELECT COUNT(*) AS n FROM t, d WHERE g = k AND w > 5",
            tables, "t",
        )
        expected = sum(1 for i in range(30) if (i % 3) * 10 > 5)
        assert query.output(tables)[0] == expected

    def test_join_protected_on_dimension_side(self, tables):
        # protect the dimension table: each d-row's contribution is the
        # number of fact rows joining it.
        query = compile_sql(
            "SELECT COUNT(*) AS n FROM t, d WHERE g = k", tables, "d"
        )
        assert query.output(tables)[0] == 30
        assert query.contribution({"k": 0, "w": 0}) == 10.0
        assert query.contribution({"k": 99, "w": 0}) == 0.0

    def test_exists_over_static_side(self, tables):
        query = compile_sql(
            "SELECT COUNT(*) AS n FROM t WHERE EXISTS "
            "(SELECT * FROM d WHERE d.k = t.g AND d.w > 5)",
            tables, "t",
        )
        expected = sum(1 for i in range(30) if (i % 3) * 10 > 5)
        assert query.output(tables)[0] == expected

    def test_domain_sampler_used(self, tables):
        query = compile_sql(
            "SELECT COUNT(*) AS n FROM t", tables, "t",
            domain_sampler=lambda rng, _t: {"v": 99, "g": 0},
        )
        record = query.sample_domain_record(random.Random(0), tables)
        assert record == {"v": 99, "g": 0}

    def test_missing_domain_sampler_raises_on_use(self, tables):
        query = compile_sql("SELECT COUNT(*) AS n FROM t", tables, "t")
        with pytest.raises(QueryShapeError):
            query.sample_domain_record(random.Random(0), tables)

    def test_monoid_laws_hold(self, tables):
        query = compile_sql(
            "SELECT SUM(v) AS s FROM t WHERE g <> 1", tables, "t",
            domain_sampler=lambda rng, _t: {"v": rng.randrange(50), "g": 0},
        )
        query.validate_monoid(tables)


class TestRejections:
    @pytest.fixture
    def tables(self):
        return {
            "t": [{"v": i, "g": i % 2} for i in range(10)],
            "d": [{"k": 0}, {"k": 1}],
        }

    def test_group_by_rejected(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql(
                "SELECT g, COUNT(*) AS n FROM t GROUP BY g", tables, "t"
            )

    def test_avg_rejected(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql("SELECT AVG(v) AS a FROM t", tables, "t")

    def test_no_aggregate_rejected(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql("SELECT v FROM t", tables, "t")

    def test_self_join_rejected(self, tables):
        session = SQLSession()
        session.create_table("t", tables["t"])
        df = session.table("t").select(col("v").alias("v1"), "g")
        other = session.table("t").select(col("v").alias("v2"),
                                          col("g").alias("g2"))
        joined = df.join(other, on=[("g", "g2")]).agg(count_star("n"))
        with pytest.raises(QueryShapeError):
            compile_plan(joined.plan, tables, "t")

    def test_exists_over_protected_rejected(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql(
                "SELECT COUNT(*) AS n FROM d WHERE EXISTS "
                "(SELECT * FROM t WHERE t.g = d.k)",
                tables, "t",
            )

    def test_unread_protected_table_rejected(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql("SELECT COUNT(*) AS n FROM d", tables, "t")

    def test_unknown_protected_table(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql("SELECT COUNT(*) AS n FROM t", tables, "nope")

    def test_count_distinct_rejected(self, tables):
        with pytest.raises(QueryShapeError):
            compile_sql("SELECT COUNT(DISTINCT v) AS n FROM t", tables, "t")


class TestAgainstHandWrittenQueries:
    @pytest.mark.parametrize("handwritten", all_queries(), ids=lambda q: q.name)
    def test_compiled_contributions_match(self, handwritten, tpch_tables):
        compiled = compile_sql(
            handwritten.sql_text(),
            tpch_tables,
            handwritten.protected_table,
            domain_sampler=handwritten.sample_domain_record,
            name=f"compiled-{handwritten.name}",
        )
        aux = handwritten.build_aux(tpch_tables)
        records = tpch_tables[handwritten.protected_table]
        for record in records[:300]:
            assert compiled.contribution(record) == pytest.approx(
                handwritten.map_record(record, aux)
            ), (handwritten.name, record)
        assert compiled.output(tpch_tables)[0] == pytest.approx(
            handwritten.output(tpch_tables)[0]
        )

    def test_run_sql_end_to_end(self, tpch_tables):
        from repro.tpch.queries.base import random_lineitem

        session = UPASession(UPAConfig(sample_size=100, seed=3))
        result = session.run_sql(
            "SELECT COUNT(*) AS n FROM lineitem",
            tpch_tables,
            protected_table="lineitem",
            epsilon=0.5,
            domain_sampler=random_lineitem,
        )
        truth = len(tpch_tables["lineitem"])
        assert result.plain_output[0] == truth
        assert result.estimated_local_sensitivity == pytest.approx(1.0)

    def test_compiled_query_sensitivity_matches_handwritten(self, tpch_tables):
        from repro.baselines import exact_local_sensitivity
        from repro.tpch.workload import query_by_name

        handwritten = query_by_name("tpch13")
        compiled = compile_sql(
            handwritten.sql_text(), tpch_tables,
            handwritten.protected_table,
            domain_sampler=handwritten.sample_domain_record,
        )
        a = exact_local_sensitivity(handwritten, tpch_tables)
        b = exact_local_sensitivity(compiled, tpch_tables)
        assert a.local_sensitivity == pytest.approx(b.local_sensitivity)
