"""Tests for the FLEX baseline and brute-force ground truth."""

import numpy as np
import pytest

from repro.baselines import (
    exact_local_sensitivity,
    flex_local_sensitivity,
)
from repro.baselines.flex import (
    TableMetadata,
    elastic_stability,
    flex_smooth_sensitivity,
    max_frequency,
)
from repro.common.errors import FlexUnsupportedError
from repro.sql import SQLSession, col, count_star, sum_
from repro.tpch.workload import all_queries, query_by_name


class TestMetadata:
    def test_max_frequency(self):
        rows = [{"k": 1}, {"k": 2}, {"k": 1}, {"k": 1}]
        assert max_frequency(rows, "k") == 3

    def test_max_frequency_empty(self):
        assert max_frequency([], "k") == 0

    def test_table_metadata_caches(self):
        rows = [{"k": 1}, {"k": 1}]
        meta = TableMetadata({"t": rows})
        assert meta.max_frequency("t", "k") == 2
        rows.append({"k": 1})  # cache hides the mutation, by design
        assert meta.max_frequency("t", "k") == 2

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            TableMetadata({}).max_frequency("nope", "k")


@pytest.fixture
def star_session():
    """A toy star schema with controlled join-key frequencies."""
    sess = SQLSession()
    sess.create_table("fact", [{"fk": i % 3, "val": i} for i in range(12)])
    sess.create_table("dim", [{"dk": d, "label": f"d{d}"} for d in range(3)])
    return sess


class TestFlexAnalysis:
    def _tables(self, session):
        return {
            name: session.catalog.table(name).rows
            for name in session.catalog.names()
        }

    def test_plain_count_sensitivity_one(self, star_session):
        plan = star_session.table("fact").agg(count_star("n")).plan
        result = flex_local_sensitivity(plan, self._tables(star_session))
        assert result.sensitivity == 1.0
        assert result.factors == []

    def test_join_multiplies_max_frequencies(self, star_session):
        df = star_session.table("fact").join(
            star_session.table("dim"), on=[("fk", "dk")]
        ).agg(count_star("n"))
        result = flex_local_sensitivity(df.plan, self._tables(star_session))
        # mf(fact.fk) = 4, mf(dim.dk) = 1
        assert result.sensitivity == 4.0
        assert len(result.factors) == 1

    def test_filters_ignored_and_recorded(self, star_session):
        df = (
            star_session.table("fact")
            .filter(col("val") > 100)  # filters out everything
            .agg(count_star("n"))
        )
        result = flex_local_sensitivity(df.plan, self._tables(star_session))
        assert result.sensitivity == 1.0  # blind to the filter
        assert len(result.ignored_filters) == 1

    def test_sum_unsupported(self, star_session):
        df = star_session.table("fact").agg(sum_(col("val"), "s"))
        with pytest.raises(FlexUnsupportedError):
            flex_local_sensitivity(df.plan, self._tables(star_session))

    def test_group_by_unsupported(self, star_session):
        df = star_session.table("fact").group_by("fk").agg(count_star("n"))
        with pytest.raises(FlexUnsupportedError):
            flex_local_sensitivity(df.plan, self._tables(star_session))

    def test_no_aggregate_unsupported(self, star_session):
        df = star_session.table("fact").select("val")
        with pytest.raises(FlexUnsupportedError):
            flex_local_sensitivity(df.plan, self._tables(star_session))

    def test_computed_join_key_unsupported(self, star_session):
        df = star_session.table("fact").join(
            star_session.table("dim"), on=[(col("fk") + 0, col("dk"))]
        ).agg(count_star("n"))
        with pytest.raises(FlexUnsupportedError):
            flex_local_sensitivity(df.plan, self._tables(star_session))

    def test_table_ii_support_matrix(self, tpch_tables, sql_session):
        """FLEX supports exactly the five counting TPC-H queries."""
        supported = {}
        for query in all_queries():
            plan = query.dataframe(sql_session).plan
            try:
                flex_local_sensitivity(plan, tpch_tables)
                supported[query.name] = True
            except FlexUnsupportedError:
                supported[query.name] = False
        assert supported == {
            "tpch1": True,
            "tpch4": True,
            "tpch13": True,
            "tpch16": True,
            "tpch21": True,
            "tpch6": False,
            "tpch11": False,
        }

    def test_flex_overestimates_join_queries(self, tpch_tables, sql_session):
        """The paper's Fig. 2(a) ordering: FLEX >> truth on Q16/Q21."""
        for name in ("tpch16", "tpch21"):
            query = query_by_name(name)
            plan = query.dataframe(sql_session).plan
            flex = flex_local_sensitivity(plan, tpch_tables).sensitivity
            truth = exact_local_sensitivity(query, tpch_tables).local_sensitivity
            assert flex >= 10 * max(truth, 1.0), name

    def test_flex_exact_on_q1(self, tpch_tables, sql_session):
        query = query_by_name("tpch1")
        plan = query.dataframe(sql_session).plan
        flex = flex_local_sensitivity(plan, tpch_tables).sensitivity
        truth = exact_local_sensitivity(
            query, tpch_tables, addition_samples=10
        ).local_sensitivity
        assert flex == truth == 1.0


class TestSmoothSensitivity:
    def test_elastic_stability_at_zero(self):
        assert elastic_stability([3, 5], 0) == 15.0

    def test_elastic_stability_grows(self):
        assert elastic_stability([3, 5], 2) == 5 * 7

    def test_negative_distance_rejected(self):
        from repro.common.errors import DPError

        with pytest.raises(DPError):
            elastic_stability([1], -1)

    def test_smooth_upper_bounds_local(self):
        mfs = [4, 2]
        assert flex_smooth_sensitivity(mfs, beta=0.05) >= elastic_stability(
            mfs, 0
        )

    def test_large_beta_reduces_to_local(self):
        mfs = [4, 2]
        assert flex_smooth_sensitivity(mfs, beta=50.0) == pytest.approx(
            elastic_stability(mfs, 0)
        )

    def test_beta_must_be_positive(self):
        from repro.common.errors import DPError

        with pytest.raises(DPError):
            flex_smooth_sensitivity([1], beta=0.0)


class TestBruteForce:
    def test_range_envelope_contains_output(self, tpch_tables):
        query = query_by_name("tpch6")
        result = exact_local_sensitivity(query, tpch_tables, addition_samples=50)
        assert np.all(result.range_lower <= result.output)
        assert np.all(result.output <= result.range_upper)

    def test_removals_exhaustive(self, tpch_tables):
        query = query_by_name("tpch13")
        result = exact_local_sensitivity(query, tpch_tables)
        assert result.removal_outputs.shape[0] == len(tpch_tables["customer"])

    def test_max_removals_caps(self, tpch_tables):
        query = query_by_name("tpch13")
        result = exact_local_sensitivity(query, tpch_tables, max_removals=5)
        assert result.removal_outputs.shape[0] == 5

    def test_addition_samples_counted(self, tpch_tables):
        query = query_by_name("tpch1")
        result = exact_local_sensitivity(
            query, tpch_tables, addition_samples=17
        )
        assert result.addition_outputs.shape[0] == 17

    def test_count_query_sensitivity_is_one(self, tpch_tables):
        result = exact_local_sensitivity(
            query_by_name("tpch1"), tpch_tables, addition_samples=10
        )
        assert result.local_sensitivity == 1.0
        assert result.range_width == 2.0  # [C-1, C+1]
