"""Shared fixtures: a small engine, generated datasets, SQL sessions.

Dataset fixtures are session-scoped (generation is deterministic and
read-only across tests); anything mutable (engine contexts, UPA
sessions) is function-scoped.
"""

from __future__ import annotations

import pytest

from repro.common.config import EngineConfig
from repro.engine import EngineContext
from repro.mining import LifeScienceConfig, make_life_science_tables
from repro.sql import SQLSession
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.datagen import register_tables

SMALL_SCALE = 2000
TPCH_SEED = 11


@pytest.fixture
def ctx() -> EngineContext:
    """A fresh 4-partition engine context."""
    return EngineContext(EngineConfig(default_parallelism=4))


@pytest.fixture
def threaded_ctx() -> EngineContext:
    """An engine context running tasks on a thread pool."""
    return EngineContext(
        EngineConfig(default_parallelism=4, use_threads=True, max_workers=4)
    )


@pytest.fixture(scope="session")
def tpch_tables():
    """Small deterministic TPC-H tables shared by read-only tests."""
    return TPCHGenerator(
        TPCHConfig(scale_rows=SMALL_SCALE, seed=TPCH_SEED)
    ).generate()


@pytest.fixture(scope="session")
def ml_tables():
    """Small deterministic life-science points table."""
    return make_life_science_tables(
        LifeScienceConfig(num_records=800, dim=3, num_clusters=2, seed=5)
    )


@pytest.fixture
def sql_session(tpch_tables) -> SQLSession:
    """A SQL session with all TPC-H tables registered."""
    session = SQLSession()
    register_tables(session, tpch_tables)
    return session
