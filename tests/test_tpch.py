"""Tests for the TPC-H generator and the seven queries.

The central consistency property: for every query, the MapReduce form,
the DataFrame form, and the SQL-text form produce the same value on the
same tables.
"""

import datetime

import numpy as np
import pytest

from repro.tpch import TPCHConfig, TPCHGenerator, all_queries, query_by_name
from repro.tpch.datagen import NATION_NAMES, TPCHGenerator as Gen
from repro.tpch.schema import ALL_SCHEMAS


class TestDatagen:
    def test_deterministic(self):
        a = TPCHGenerator(TPCHConfig(scale_rows=500, seed=9)).generate()
        b = TPCHGenerator(TPCHConfig(scale_rows=500, seed=9)).generate()
        assert a == b

    def test_seed_changes_data(self):
        a = TPCHGenerator(TPCHConfig(scale_rows=500, seed=1)).generate()
        b = TPCHGenerator(TPCHConfig(scale_rows=500, seed=2)).generate()
        assert a["lineitem"] != b["lineitem"]

    def test_lineitem_count_matches_scale(self, tpch_tables):
        assert len(tpch_tables["lineitem"]) == 2000

    def test_all_tables_present(self, tpch_tables):
        assert set(tpch_tables) == set(ALL_SCHEMAS)

    def test_rows_match_schema(self, tpch_tables):
        for name, schema in ALL_SCHEMAS.items():
            for row in tpch_tables[name][:20]:
                assert set(row) == set(schema.names), name

    def test_foreign_keys_resolve(self, tpch_tables):
        orderkeys = {o["o_orderkey"] for o in tpch_tables["orders"]}
        custkeys = {c["c_custkey"] for c in tpch_tables["customer"]}
        suppkeys = {s["s_suppkey"] for s in tpch_tables["supplier"]}
        partkeys = {p["p_partkey"] for p in tpch_tables["part"]}
        for item in tpch_tables["lineitem"]:
            assert item["l_orderkey"] in orderkeys
            assert item["l_suppkey"] in suppkeys
            assert item["l_partkey"] in partkeys
        for order in tpch_tables["orders"]:
            assert order["o_custkey"] in custkeys
        for ps in tpch_tables["partsupp"]:
            assert ps["ps_partkey"] in partkeys
            assert ps["ps_suppkey"] in suppkeys

    def test_nation_region_mapping(self, tpch_tables):
        regions = {r["r_regionkey"] for r in tpch_tables["region"]}
        for nation in tpch_tables["nation"]:
            assert nation["n_regionkey"] in regions
        assert len(tpch_tables["nation"]) == len(NATION_NAMES)

    def test_dates_in_range(self, tpch_tables):
        lo = datetime.date(1992, 1, 1)
        hi = datetime.date(1999, 12, 31)
        for order in tpch_tables["orders"][:200]:
            assert lo <= order["o_orderdate"] <= hi

    def test_comment_rates_roughly_configured(self):
        cfg = TPCHConfig(scale_rows=20_000, seed=0, special_comment_rate=0.35)
        tables = TPCHGenerator(cfg).generate()
        special = sum(
            1 for o in tables["orders"] if "special" in o["o_comment"]
        )
        rate = special / len(tables["orders"])
        assert 0.30 < rate < 0.40

    def test_supplier_skew_present(self, tpch_tables):
        from collections import Counter

        counts = Counter(i["l_suppkey"] for i in tpch_tables["lineitem"])
        values = sorted(counts.values(), reverse=True)
        # Zipf head: the most loaded supplier far exceeds the median.
        assert values[0] >= 5 * values[len(values) // 2]

    def test_scale_too_small_rejected(self):
        with pytest.raises(ValueError):
            TPCHConfig(scale_rows=50)

    def test_zipf_index_bounds(self):
        gen = Gen(TPCHConfig(scale_rows=500))
        import random

        rng = random.Random(0)
        draws = [gen._zipf_index(rng, 10) for _ in range(1000)]
        assert min(draws) == 0
        assert max(draws) <= 9
        # skewed towards 0
        assert draws.count(0) > draws.count(9)


class TestQueryConsistency:
    @pytest.mark.parametrize("query", all_queries(), ids=lambda q: q.name)
    def test_three_forms_agree(self, query, tpch_tables, sql_session):
        mr_value = query.output(tpch_tables)[0]
        df_value = query.dataframe(sql_session).collect()[0]["result"] or 0.0
        sql_value = (
            sql_session.sql(query.sql_text()).collect()[0]["result"] or 0.0
        )
        assert mr_value == pytest.approx(df_value)
        assert mr_value == pytest.approx(sql_value)

    @pytest.mark.parametrize("query", all_queries(), ids=lambda q: q.name)
    def test_monoid_valid(self, query, tpch_tables):
        query.validate_monoid(tpch_tables, sample=20, seed=3)

    @pytest.mark.parametrize("query", all_queries(), ids=lambda q: q.name)
    def test_domain_records_have_protected_schema(self, query, tpch_tables):
        import random

        rng = random.Random(1)
        record = query.sample_domain_record(rng, tpch_tables)
        expected = set(ALL_SCHEMAS[query.protected_table].names)
        assert set(record) == expected

    def test_query_by_name(self):
        assert query_by_name("tpch6").name == "tpch6"
        with pytest.raises(KeyError):
            query_by_name("tpch99")

    def test_support_matrix(self):
        support = {q.name: q.flex_supported for q in all_queries()}
        assert support == {
            "tpch1": True,
            "tpch4": True,
            "tpch13": True,
            "tpch16": True,
            "tpch21": True,
            "tpch6": False,
            "tpch11": False,
        }


class TestQuerySemantics:
    def test_q1_counts_everything(self, tpch_tables):
        query = query_by_name("tpch1")
        assert query.output(tpch_tables)[0] == len(tpch_tables["lineitem"])

    def test_q1_every_record_contributes_one(self, tpch_tables):
        query = query_by_name("tpch1")
        aux = query.build_aux(tpch_tables)
        assert all(
            query.map_record(r, aux) == 1.0
            for r in tpch_tables["lineitem"][:50]
        )

    def test_q4_contribution_counts_late_lineitems(self, tpch_tables):
        query = query_by_name("tpch4")
        aux = query.build_aux(tpch_tables)
        order = tpch_tables["orders"][0]
        expected = sum(
            1
            for i in tpch_tables["lineitem"]
            if i["l_orderkey"] == order["o_orderkey"]
            and i["l_commitdate"] < i["l_receiptdate"]
        )
        in_window = (
            datetime.date(1993, 1, 1)
            <= order["o_orderdate"]
            < datetime.date(1994, 1, 1)
        )
        assert query.map_record(order, aux) == (expected if in_window else 0)

    def test_q6_respects_filters(self, tpch_tables):
        query = query_by_name("tpch6")
        aux = query.build_aux(tpch_tables)
        for item in tpch_tables["lineitem"][:200]:
            value = query.map_record(item, aux)
            passes = (
                datetime.date(1994, 1, 1)
                <= item["l_shipdate"]
                < datetime.date(1995, 1, 1)
                and 0.03 <= item["l_discount"] <= 0.08
                and item["l_quantity"] < 40
            )
            if passes:
                assert value == pytest.approx(
                    item["l_extendedprice"] * item["l_discount"]
                )
            else:
                assert value == 0.0

    def test_q11_only_german_suppliers_count(self, tpch_tables):
        query = query_by_name("tpch11")
        aux = query.build_aux(tpch_tables)
        german_idx = NATION_NAMES.index("GERMANY")
        german = {
            s["s_suppkey"]
            for s in tpch_tables["supplier"]
            if s["s_nationkey"] == german_idx
        }
        for ps in tpch_tables["partsupp"][:100]:
            value = query.map_record(ps, aux)
            if ps["ps_suppkey"] in german:
                assert value > 0
            else:
                assert value == 0.0

    def test_q13_customer_contribution(self, tpch_tables):
        query = query_by_name("tpch13")
        aux = query.build_aux(tpch_tables)
        total = sum(
            query.map_record(c, aux) for c in tpch_tables["customer"]
        )
        assert total == query.output(tpch_tables)[0]

    def test_q16_new_part_contributes_zero(self, tpch_tables):
        import random

        query = query_by_name("tpch16")
        aux = query.build_aux(tpch_tables)
        fresh = query.sample_domain_record(random.Random(0), tpch_tables)
        assert query.map_record(fresh, aux) == 0.0

    def test_q21_nation_filter(self, tpch_tables):
        query = query_by_name("tpch21")
        aux = query.build_aux(tpch_tables)
        saudi_idx = NATION_NAMES.index("SAUDI ARABIA")
        for supplier in tpch_tables["supplier"]:
            if supplier["s_nationkey"] != saudi_idx:
                assert query.map_record(supplier, aux) == 0.0

    def test_q21_exists_semantics(self):
        """Hand-built micro dataset checks sole-late-supplier logic."""
        day = datetime.date
        lineitem = [
            # order 1: suppliers 1 (late) and 2 (on time) -> supplier 1 counts
            {"l_orderkey": 1, "l_suppkey": 1, "l_receiptdate": day(1995, 2, 1),
             "l_commitdate": day(1995, 1, 1)},
            {"l_orderkey": 1, "l_suppkey": 2, "l_receiptdate": day(1995, 1, 1),
             "l_commitdate": day(1995, 2, 1)},
            # order 2: both suppliers late -> nobody counts
            {"l_orderkey": 2, "l_suppkey": 1, "l_receiptdate": day(1995, 2, 1),
             "l_commitdate": day(1995, 1, 1)},
            {"l_orderkey": 2, "l_suppkey": 2, "l_receiptdate": day(1995, 2, 1),
             "l_commitdate": day(1995, 1, 1)},
            # order 3: single supplier late, no other supplier -> no EXISTS
            {"l_orderkey": 3, "l_suppkey": 1, "l_receiptdate": day(1995, 2, 1),
             "l_commitdate": day(1995, 1, 1)},
        ]
        orders = [
            {"o_orderkey": 1, "o_orderstatus": "F"},
            {"o_orderkey": 2, "o_orderstatus": "F"},
            {"o_orderkey": 3, "o_orderstatus": "F"},
        ]
        nation = [{"n_nationkey": 20, "n_name": "SAUDI ARABIA"}]
        supplier = [
            {"s_suppkey": 1, "s_nationkey": 20},
            {"s_suppkey": 2, "s_nationkey": 20},
        ]
        tables = {
            "lineitem": lineitem,
            "orders": orders,
            "nation": nation,
            "supplier": supplier,
        }
        query = query_by_name("tpch21")
        aux = query.build_aux(tables)
        assert query.map_record(supplier[0], aux) == 1.0
        assert query.map_record(supplier[1], aux) == 0.0
