"""Tests for DP foundations: mechanisms, budget accounting, sensitivity."""

import math

import numpy as np
import pytest

from repro.common.errors import DPError, PrivacyBudgetExceeded
from repro.dp import (
    GaussianMechanism,
    LaplaceMechanism,
    PrivacyAccountant,
    SensitivityEstimate,
    laplace_noise,
)
from repro.dp.sensitivity import l1_range_width, smooth_sensitivity


class TestLaplace:
    def test_scale(self):
        assert LaplaceMechanism(0.5).scale(2.0) == 4.0

    def test_zero_sensitivity_adds_no_noise(self):
        mech = LaplaceMechanism(1.0, seed=1)
        assert mech.randomize(5.0, 0.0) == 5.0

    def test_deterministic_with_seed(self):
        a = LaplaceMechanism(1.0, seed=42).randomize(0.0, 1.0)
        b = LaplaceMechanism(1.0, seed=42).randomize(0.0, 1.0)
        assert a == b

    def test_noise_magnitude_statistics(self):
        mech = LaplaceMechanism(1.0, seed=0)
        draws = np.array([mech.randomize(0.0, 1.0) for _ in range(4000)])
        # Laplace(0, 1): mean 0, variance 2.
        assert abs(draws.mean()) < 0.1
        assert abs(draws.var() - 2.0) < 0.3

    def test_vector_output(self):
        mech = LaplaceMechanism(1.0, seed=3)
        out = mech.randomize(np.zeros(5), 1.0)
        assert out.shape == (5,)
        assert not np.allclose(out, 0.0)

    def test_invalid_epsilon(self):
        with pytest.raises(DPError):
            LaplaceMechanism(0.0)

    def test_negative_sensitivity(self):
        with pytest.raises(DPError):
            LaplaceMechanism(1.0).randomize(0.0, -1.0)

    def test_laplace_noise_validation(self):
        with pytest.raises(DPError):
            laplace_noise(-1.0)

    def test_smaller_epsilon_means_more_noise(self):
        tight = LaplaceMechanism(10.0, seed=5)
        loose = LaplaceMechanism(0.01, seed=5)
        tight_spread = np.std(
            [tight.randomize(0.0, 1.0) for _ in range(500)]
        )
        loose_spread = np.std(
            [loose.randomize(0.0, 1.0) for _ in range(500)]
        )
        assert loose_spread > 50 * tight_spread


class TestGaussian:
    def test_sigma_formula(self):
        mech = GaussianMechanism(0.5, 1e-5)
        expected = 1.0 * math.sqrt(2 * math.log(1.25 / 1e-5)) / 0.5
        assert mech.sigma(1.0) == pytest.approx(expected)

    def test_epsilon_range_enforced(self):
        with pytest.raises(DPError):
            GaussianMechanism(1.5, 1e-5)
        with pytest.raises(DPError):
            GaussianMechanism(0.5, 0.0)

    def test_vector_randomize(self):
        mech = GaussianMechanism(0.5, 1e-5, seed=1)
        out = mech.randomize(np.ones(3), 1.0)
        assert out.shape == (3,)

    def test_scalar_randomize_deterministic(self):
        a = GaussianMechanism(0.5, 1e-5, seed=9).randomize(1.0, 1.0)
        b = GaussianMechanism(0.5, 1e-5, seed=9).randomize(1.0, 1.0)
        assert a == b


class TestAccountant:
    def test_charges_accumulate(self):
        acct = PrivacyAccountant(total_epsilon=1.0)
        acct.charge(0.3, label="q1")
        acct.charge(0.3, label="q2")
        assert acct.remaining_epsilon() == pytest.approx(0.4)
        assert [h[2] for h in acct.history()] == ["q1", "q2"]

    def test_exceeding_budget_raises(self):
        acct = PrivacyAccountant(total_epsilon=0.5)
        acct.charge(0.4)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.charge(0.2)

    def test_rejected_charge_not_recorded(self):
        acct = PrivacyAccountant(total_epsilon=0.5)
        acct.charge(0.4)
        try:
            acct.charge(0.2)
        except PrivacyBudgetExceeded:
            pass
        assert acct.remaining_epsilon() == pytest.approx(0.1)

    def test_delta_budget(self):
        acct = PrivacyAccountant(total_epsilon=10.0, total_delta=1e-5)
        acct.charge(1.0, delta=5e-6)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.charge(1.0, delta=6e-6)

    def test_invalid_budgets(self):
        with pytest.raises(DPError):
            PrivacyAccountant(total_epsilon=0.0)
        with pytest.raises(DPError):
            PrivacyAccountant(1.0, total_delta=-1.0)

    def test_invalid_charges(self):
        acct = PrivacyAccountant(1.0)
        with pytest.raises(DPError):
            acct.charge(0.0)
        with pytest.raises(DPError):
            acct.charge(0.1, delta=-1e-9)


class TestSensitivityHelpers:
    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            SensitivityEstimate(-1.0)
        with pytest.raises(ValueError):
            SensitivityEstimate(1.0, kind="weird")

    def test_estimate_fields(self):
        est = SensitivityEstimate(2.0, kind="local", method="upa")
        assert est.value == 2.0

    def test_smooth_sensitivity(self):
        # LS_k constant: smoothing picks k=0.
        assert smooth_sensitivity([5, 5, 5], beta=0.1) == 5.0
        # rapidly growing LS_k can dominate despite decay
        grown = smooth_sensitivity([1.0, 100.0], beta=0.1)
        assert grown == pytest.approx(math.exp(-0.1) * 100.0)

    def test_smooth_sensitivity_negative_beta(self):
        with pytest.raises(ValueError):
            smooth_sensitivity([1.0], beta=-1.0)

    def test_l1_range_width(self):
        assert l1_range_width([0, 0], [1, 3]) == 4.0
        with pytest.raises(ValueError):
            l1_range_width([1], [0])
        with pytest.raises(ValueError):
            l1_range_width([0, 0], [1])
