"""Tests for repro.common: rng, config, timing, error types."""

import time

import pytest

from repro.common import (
    EngineConfig,
    PrivacyBudgetExceeded,
    ReproError,
    Timer,
    derive_seed,
    make_rng,
)
from repro.common.errors import (
    DPError,
    EngineError,
    FlexUnsupportedError,
    ParseError,
    SQLError,
    TaskFailedError,
)
from repro.common.rng import make_numpy_rng


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_derive_seed_label_sensitive(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_derive_seed_parent_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_positive_63bit(self):
        seed = derive_seed(123456789, "label")
        assert 0 <= seed < (1 << 63)

    def test_make_rng_with_label(self):
        a = make_rng(7, "x").random()
        b = make_rng(7, "x").random()
        c = make_rng(7, "y").random()
        assert a == b != c

    def test_make_rng_none_is_nondeterministic_instance(self):
        rng = make_rng(None)
        assert 0.0 <= rng.random() < 1.0

    def test_numpy_rng(self):
        a = make_numpy_rng(3, "z").normal()
        b = make_numpy_rng(3, "z").normal()
        assert a == b


class TestConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.default_parallelism == 4
        assert config.max_task_retries == 3

    def test_with_overrides(self):
        config = EngineConfig().with_overrides(default_parallelism=16)
        assert config.default_parallelism == 16
        assert EngineConfig().default_parallelism == 4  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().default_parallelism = 99  # type: ignore[misc]


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(EngineError, ReproError)
        assert issubclass(SQLError, ReproError)
        assert issubclass(DPError, ReproError)
        assert issubclass(PrivacyBudgetExceeded, DPError)
        assert issubclass(FlexUnsupportedError, DPError)

    def test_budget_error_fields(self):
        err = PrivacyBudgetExceeded(requested=0.5, remaining=0.1)
        assert err.requested == 0.5
        assert err.remaining == 0.1
        assert "0.5" in str(err)

    def test_task_failed_fields(self):
        cause = ValueError("boom")
        err = TaskFailedError(3, 1, 4, cause)
        assert err.stage_id == 3
        assert err.cause is cause

    def test_parse_error_position(self):
        err = ParseError("bad token", position=17)
        assert "17" in str(err)
