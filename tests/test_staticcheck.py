"""Tests for the upalint static analyzer (repro.staticcheck).

The negative fixtures each seed one violation the ISSUE's acceptance
criteria name: a non-commutative reducer, a random-calling mapper, an
in-place-mutating combine, and an unsupported SQL plan — and the test
asserts the documented diagnostic code fires.  The positive test runs
the analyzer over all nine shipped workloads and requires zero
error-severity findings.
"""

from __future__ import annotations

import json
import random
from typing import Any

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.common.errors import QueryShapeError, StaticAnalysisError
from repro.core.query import MapReduceQuery, Row, Tables
from repro.core.session import UPAConfig, UPASession
from repro.sql.functions import avg, count_star
from repro.sql.session import SQLSession
from repro.staticcheck import (
    CODE_REGISTRY,
    Severity,
    check_plan,
    check_query,
    check_query_pickleability,
    check_source,
    lint_workloads,
    render_json,
    render_text,
    run_lint,
)


# ---------------------------------------------------------------------------
# Fixture queries (each seeds exactly one violation)
# ---------------------------------------------------------------------------


class _FixtureBase(MapReduceQuery):
    """A minimal, well-behaved scalar count query."""

    name = "fixture"
    protected_table = "t"
    output_dim = 1

    def map_record(self, record: Row, aux: Any) -> float:
        return 1.0

    def zero(self) -> float:
        return 0.0

    def combine(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, agg: float, aux: Any) -> np.ndarray:
        return np.asarray([float(agg)], dtype=float)

    def sample_domain_record(self, rng: random.Random, tables: Tables) -> Row:
        return {"v": rng.randrange(10)}


class RandomMapperQuery(_FixtureBase):
    """UPA001: nondeterministic mapper."""

    name = "bad-random"

    def map_record(self, record: Row, aux: Any) -> float:
        return random.random()


class ClockFinalizeQuery(_FixtureBase):
    """UPA001: clock read in finalize."""

    name = "bad-clock"

    def finalize(self, agg: float, aux: Any) -> np.ndarray:
        import datetime

        _stamp = datetime.datetime.now()
        return np.asarray([float(agg)], dtype=float)


class SelfMutatingQuery(_FixtureBase):
    """UPA002: mapper accumulates into self."""

    name = "bad-stateful"

    def __init__(self) -> None:
        self.seen = 0

    def map_record(self, record: Row, aux: Any) -> float:
        self.seen += 1
        return 1.0


class MutatingCombineQuery(_FixtureBase):
    """UPA003: combine mutates its right argument in place."""

    name = "bad-mutating-combine"

    def zero(self) -> list:
        return [0.0]

    def combine(self, a: list, b: list) -> list:
        b.extend(a)
        return b

    def finalize(self, agg: list, aux: Any) -> np.ndarray:
        return np.asarray([float(sum(agg))], dtype=float)


class NonCommutativeQuery(_FixtureBase):
    """UPA004: subtraction across combine's arguments."""

    name = "bad-noncommutative"

    def combine(self, a: float, b: float) -> float:
        return a - b


class AuxReadsProtectedQuery(_FixtureBase):
    """UPA005: build_aux scans the protected table, undeclared."""

    name = "bad-aux"

    def build_aux(self, tables: Tables) -> float:
        return float(len(tables["t"]))


class DeclaredAuxQuery(AuxReadsProtectedQuery):
    """UPA005 downgrades to info when declared."""

    name = "declared-aux"
    aux_reads_protected = True


class OrphanBatchQuery(MapReduceQuery):
    """UPA010: map_batch overridden without map_record."""

    name = "bad-orphan-batch"
    protected_table = "t"
    output_dim = 1

    def zero(self) -> float:
        return 0.0

    def combine(self, a: float, b: float) -> float:
        return a + b

    def finalize(self, agg: float, aux: Any) -> np.ndarray:
        return np.asarray([float(agg)], dtype=float)

    def map_batch(self, records, aux):
        return np.ones(len(records), dtype=float)


class MutatingBatchQuery(_FixtureBase):
    """UPA010: combine_batch writes into its input batch."""

    name = "bad-mutating-batch"

    def combine_batch(self, agg, elements):
        elements += agg
        return elements


class CleanBatchQuery(_FixtureBase):
    """Batched kernels with their scalar partners: no UPA010."""

    name = "clean-batch"

    def map_batch(self, records, aux):
        return np.ones(len(records), dtype=float)

    def combine_batch(self, agg, elements):
        return float(agg) + np.asarray(elements, dtype=float)


class EvalMapperQuery(_FixtureBase):
    """UPA012: per-row Expression.eval in map_record."""

    name = "bad-eval-mapper"

    def map_record(self, record: Row, aux: Any) -> float:
        from repro.sql.expr import col

        return 1.0 if col("v").eval(record) else 0.0


class EvalLoopAuxQuery(_FixtureBase):
    """UPA012: Expression.eval inside a build_aux loop."""

    name = "bad-eval-aux"

    def build_aux(self, tables: Tables) -> Any:
        from repro.sql.expr import col

        matcher = col("v") > 0
        return sum(1 for row in tables["t"] if matcher.eval(row))


class CompiledAuxQuery(_FixtureBase):
    """Compiled closure in the loop: no UPA012."""

    name = "good-compiled-aux"

    def build_aux(self, tables: Tables) -> Any:
        from repro.sql.expr import col

        matches = (col("v") > 0).compiled()
        return sum(1 for row in tables["t"] if matches(row))


class ServerInMapperQuery(_FixtureBase):
    """UPA013: mapper constructs an ObservabilityServer."""

    name = "bad-server-mapper"

    def map_record(self, record: Row, aux: Any) -> float:
        from repro.obs.server import ObservabilityServer

        ObservabilityServer(port=0).start()
        return 1.0


class ProfilerInCombineQuery(_FixtureBase):
    """UPA013: combine starts a SamplingProfiler."""

    name = "bad-profiler-combine"

    def combine(self, a: float, b: float) -> float:
        from repro.obs import profiler

        profiler.SamplingProfiler(hz=10).start()
        return a + b


class ServeInBatchKernelQuery(_FixtureBase):
    """UPA013: batched kernel calls a .serve() method."""

    name = "bad-serve-batch"

    def fold_batch(self, elements):
        aux = getattr(self, "session", None)
        aux.serve()
        return float(np.sum(np.asarray(elements, dtype=float)))


#: module-level containers the UPA015 fixtures mutate.
_LINT_CACHE: list = []
_LINT_STATE: dict = {}


class CapturedListQuery(_FixtureBase):
    """UPA015: mapper appends into a module-level list."""

    name = "bad-captured-list"

    def map_record(self, record: Row, aux: Any) -> float:
        _LINT_CACHE.append(record)
        return 1.0


class CapturedDictQuery(_FixtureBase):
    """UPA015: combine writes into a module-level dict."""

    name = "bad-captured-dict"

    def combine(self, a: float, b: float) -> float:
        _LINT_STATE["last"] = a
        return a + b


class MutableDefaultQuery(_FixtureBase):
    """UPA015: mapper accumulates into a mutable default argument."""

    name = "bad-mutable-default"

    def map_record(self, record: Row, aux: Any, seen: list = []) -> float:
        seen.append(record)
        return 1.0


class CapturedBatchKernelQuery(_FixtureBase):
    """UPA015 applies to batched kernels too."""

    name = "bad-captured-batch"

    def map_batch(self, records, aux):
        _LINT_CACHE.extend(records)
        return np.ones(len(records), dtype=float)


class ModuleCallQuery(_FixtureBase):
    """np.add(a, b) is an API call on a module, not captured state."""

    name = "good-module-call"

    def combine(self, a: float, b: float) -> float:
        return float(np.add(a, b))


def _codes(diagnostics):
    return {d.code for d in diagnostics}


def _errors(diagnostics):
    return [d for d in diagnostics if d.severity == Severity.ERROR]


class TestPurityPass:
    def test_clean_fixture_has_no_findings(self):
        assert check_query(_FixtureBase()) == []

    def test_random_mapper_flagged(self):
        diags = check_query(RandomMapperQuery())
        assert "UPA001" in _codes(diags)
        (diag,) = [d for d in diags if d.code == "UPA001"]
        assert diag.severity == Severity.ERROR
        assert "random" in diag.message
        assert diag.file.endswith("test_staticcheck.py")
        assert diag.line > 0

    def test_clock_read_flagged(self):
        diags = check_query(ClockFinalizeQuery())
        assert "UPA001" in _codes(diags)

    def test_self_mutation_flagged(self):
        diags = check_query(SelfMutatingQuery())
        assert "UPA002" in _codes(diags)
        assert _errors(diags)

    def test_mutating_combine_flagged(self):
        diags = check_query(MutatingCombineQuery())
        assert "UPA003" in _codes(diags)
        (diag,) = [d for d in diags if d.code == "UPA003"]
        assert "b.extend" in diag.message

    def test_non_commutative_combine_flagged(self):
        diags = check_query(NonCommutativeQuery())
        assert "UPA004" in _codes(diags)

    def test_aux_reads_protected_flagged_as_warning(self):
        diags = check_query(AuxReadsProtectedQuery())
        (diag,) = [d for d in diags if d.code == "UPA005"]
        assert diag.severity == Severity.WARNING

    def test_declared_aux_downgrades_to_info(self):
        diags = check_query(DeclaredAuxQuery())
        (diag,) = [d for d in diags if d.code == "UPA005"]
        assert diag.severity == Severity.INFO

    def test_orphan_batch_kernel_flagged(self):
        diags = check_query(OrphanBatchQuery())
        (diag,) = [d for d in diags if d.code == "UPA010"]
        assert diag.severity == Severity.WARNING
        assert "map_record" in diag.message

    def test_mutating_batch_kernel_flagged(self):
        diags = check_query(MutatingBatchQuery())
        (diag,) = [d for d in diags if d.code == "UPA010"]
        assert diag.severity == Severity.WARNING
        assert "in-place" in diag.message

    def test_batch_kernels_with_scalar_partners_are_clean(self):
        assert check_query(CleanBatchQuery()) == []

    def test_shipped_batched_workloads_have_no_upa010(self):
        from repro.mining.kmeans import KMeansQuery
        from repro.mining.linreg import LinearRegressionQuery
        from repro.tpch import query_by_name

        for query in (query_by_name("tpch6"), KMeansQuery(),
                      LinearRegressionQuery()):
            assert not [
                d for d in check_query(query) if d.code == "UPA010"
            ]

    def test_eval_in_map_record_flagged(self):
        diags = check_query(EvalMapperQuery())
        (diag,) = [d for d in diags if d.code == "UPA012"]
        assert diag.severity == Severity.WARNING
        assert "per row" in diag.message
        assert "compile" in (diag.hint or "")

    def test_eval_loop_in_build_aux_flagged(self):
        diags = check_query(EvalLoopAuxQuery())
        assert "UPA012" in _codes(diags)

    def test_compiled_closure_loop_is_clean(self):
        assert not [
            d for d in check_query(CompiledAuxQuery())
            if d.code == "UPA012"
        ]

    def test_shipped_workloads_have_no_upa012(self):
        from repro.tpch import query_by_name

        for name in ("tpch13", "tpch16"):
            assert not [
                d for d in check_query(query_by_name(name))
                if d.code == "UPA012"
            ]

    def test_server_in_mapper_flagged(self):
        diags = [
            d for d in check_query(ServerInMapperQuery())
            if d.code == "UPA013"
        ]
        assert diags
        assert all(d.severity == Severity.WARNING for d in diags)
        assert "ObservabilityServer" in diags[0].message

    def test_profiler_in_combine_flagged(self):
        diags = [
            d for d in check_query(ProfilerInCombineQuery())
            if d.code == "UPA013"
        ]
        assert diags
        assert "SamplingProfiler" in diags[0].message

    def test_serve_call_in_batch_kernel_flagged(self):
        diags = [
            d for d in check_query(ServeInBatchKernelQuery())
            if d.code == "UPA013"
        ]
        assert diags
        assert ".serve()" in diags[0].message

    def test_clean_fixture_has_no_upa013(self):
        assert not [
            d for d in check_query(CleanBatchQuery())
            if d.code == "UPA013"
        ]

    def test_shipped_workloads_have_no_upa013(self):
        from repro.workloads import all_workloads

        for workload in all_workloads():
            assert not [
                d for d in check_query(workload.query)
                if d.code == "UPA013"
            ]

    def test_captured_list_mutation_flagged(self):
        diags = [
            d for d in check_query(CapturedListQuery())
            if d.code == "UPA015"
        ]
        assert diags
        assert all(d.severity == Severity.ERROR for d in diags)
        assert "_LINT_CACHE" in diags[0].message

    def test_captured_dict_write_flagged(self):
        diags = [
            d for d in check_query(CapturedDictQuery())
            if d.code == "UPA015"
        ]
        assert diags
        assert "_LINT_STATE" in diags[0].message

    def test_mutable_default_argument_flagged(self):
        diags = [
            d for d in check_query(MutableDefaultQuery())
            if d.code == "UPA015"
        ]
        assert diags
        assert "mutable container" in diags[0].message

    def test_captured_state_in_batch_kernel_flagged(self):
        diags = [
            d for d in check_query(CapturedBatchKernelQuery())
            if d.code == "UPA015"
        ]
        assert diags

    def test_module_api_calls_not_flagged(self):
        assert not [
            d for d in check_query(ModuleCallQuery())
            if d.code == "UPA015"
        ]

    def test_strict_session_blocks_captured_state(self):
        session = UPASession(UPAConfig(sample_size=4, seed=0, strict=True))
        tables = {"t": [{"v": float(i)} for i in range(20)]}
        with pytest.raises(StaticAnalysisError, match="UPA015"):
            session.run(CapturedListQuery(), tables, epsilon=0.5)

    def test_shipped_workloads_have_no_upa015(self):
        from repro.workloads import all_workloads

        for workload in all_workloads():
            assert not [
                d for d in check_query(workload.query)
                if d.code == "UPA015"
            ]

    def test_source_unavailable_is_info_not_crash(self):
        namespace: dict = {"_FixtureBase": _FixtureBase}
        exec(
            "class Generated(_FixtureBase):\n"
            "    name = 'generated'\n"
            "    def combine(self, a, b):\n"
            "        return a + b\n",
            namespace,
        )
        diags = check_query(namespace["Generated"]())
        assert {d.code for d in diags} <= {"UPA006"}
        assert not _errors(diags)


class TestPlanPass:
    @staticmethod
    def _session() -> SQLSession:
        session = SQLSession()
        session.create_table("t", [{"v": 1, "g": "x"}])
        session.create_table("u", [{"w": 1}])
        return session

    def test_group_by_is_unsupported(self):
        session = self._session()
        plan = session.table("t").group_by("g").agg(count_star("n")).plan
        diags = check_plan(plan, protected_table="t", query_name="fix")
        errors = [d for d in _errors(diags) if d.code == "UPA101"]
        assert errors and "GROUP BY" in errors[0].message

    def test_avg_is_unsupported(self):
        from repro.sql.expr import col

        session = self._session()
        plan = session.table("t").agg(avg(col("v"), "a")).plan
        diags = check_plan(plan, protected_table="t")
        assert any(
            d.code == "UPA101" and "AVG" in d.message for d in _errors(diags)
        )

    def test_distinct_on_protected_path_is_unsupported(self):
        session = self._session()
        plan = session.table("t").distinct().agg(count_star("n")).plan
        diags = check_plan(plan, protected_table="t")
        assert any(d.code == "UPA101" for d in _errors(diags))

    def test_union_on_protected_path_is_unsupported(self):
        session = self._session()
        frame = session.table("t")
        plan = frame.union_all(frame).agg(count_star("n")).plan
        diags = check_plan(plan, protected_table="t")
        assert any(d.code == "UPA101" for d in _errors(diags))

    def test_protected_self_join_is_unsupported(self):
        from repro.sql.expr import col

        session = self._session()
        left = session.table("t")
        right = session.table("t").select(col("v").alias("v2"))
        plan = left.join(right, on=[("v", "v2")]).agg(count_star("n")).plan
        diags = check_plan(plan, protected_table="t")
        assert any(
            d.code == "UPA101" and "self-join" in d.message
            for d in _errors(diags)
        )

    def test_missing_aggregate_is_unsupported(self):
        session = self._session()
        plan = session.table("t").plan
        diags = check_plan(plan, protected_table="t")
        assert any(d.code == "UPA101" for d in _errors(diags))

    def test_supported_join_count_is_clean_with_amplification_info(self):
        session = self._session()
        joined = session.table("t").join(session.table("u"), on=[("v", "w")])
        plan = joined.agg(count_star("n")).plan
        diags = check_plan(plan, protected_table="t", query_name="joiny")
        assert not _errors(diags)
        assert any(d.code == "UPA102" for d in diags)

    def test_numeric_fanout_with_tables(self):
        session = SQLSession()
        t_rows = [{"v": 1}, {"v": 1}, {"v": 2}]
        u_rows = [{"w": 1}, {"w": 1}, {"w": 1}, {"w": 2}]
        session.create_table("t", t_rows)
        session.create_table("u", u_rows)
        joined = session.table("t").join(session.table("u"), on=[("v", "w")])
        plan = joined.agg(count_star("n")).plan
        diags = check_plan(
            plan, protected_table="t", tables={"t": t_rows, "u": u_rows}
        )
        (amp,) = [d for d in diags if d.code == "UPA102"]
        assert "fan-out 2 x 3" in amp.message

    def test_flex_mismatch_warning(self):
        session = self._session()
        plan = session.table("t").group_by("g").agg(count_star("n")).plan
        diags = check_plan(plan, protected_table="t", flex_supported=True)
        assert any(d.code == "UPA103" for d in diags)

    def test_flex_consistent_count_no_mismatch(self):
        session = self._session()
        plan = session.table("t").agg(count_star("n")).plan
        diags = check_plan(plan, protected_table="t", flex_supported=True)
        assert not any(d.code == "UPA103" for d in diags)


class TestBudgetFlowPass:
    def test_uncharged_session_flagged(self):
        diags = check_source(
            "from repro.core import UPASession\n"
            "session = UPASession()\n"
            "result = session.run(query, tables, epsilon=0.5)\n",
            "snippet.py",
        )
        assert "UPA201" in _codes(diags)

    def test_accountant_session_is_clean(self):
        diags = check_source(
            "session = UPASession(config, accountant=acct)\n"
            "result = session.run(query, tables, epsilon=0.5)\n",
            "snippet.py",
        )
        assert "UPA201" not in _codes(diags)

    def test_invalid_epsilon_literal_is_error(self):
        diags = check_source(
            "session = UPASession(accountant=acct)\n"
            "session.run(q, t, epsilon=-0.5)\n",
            "snippet.py",
        )
        (diag,) = [d for d in diags if d.code == "UPA202"]
        assert diag.severity == Severity.ERROR
        assert diag.line == 2

    def test_invalid_delta_literal_is_error(self):
        diags = check_source(
            "acct = PrivacyAccountant(total_epsilon=1.0, total_delta=1.5)\n",
            "snippet.py",
        )
        assert "UPA202" in _codes(diags)

    def test_valid_literals_are_clean(self):
        diags = check_source(
            "acct = PrivacyAccountant(total_epsilon=1.0, total_delta=1e-6)\n"
            "session = UPASession(accountant=acct)\n"
            "session.run(q, t, epsilon=0.1)\n",
            "snippet.py",
        )
        assert diags == []

    def test_printing_raw_output_is_info(self):
        diags = check_source(
            "print('raw was', result.raw_output)\n", "snippet.py"
        )
        (diag,) = [d for d in diags if d.code == "UPA203"]
        assert diag.severity == Severity.INFO

    def test_syntax_error_reported_not_raised(self):
        diags = check_source("def broken(:\n", "snippet.py")
        assert diags and diags[0].severity == Severity.ERROR


class TestPickleabilityPass:
    """UPA014: will the monoid survive stdlib pickle on the process
    backend?  (See docs/performance.md, "Execution backends".)"""

    def test_lambda_shipped_into_rdd_operator_flagged(self):
        class ShipsLambda(_FixtureBase):
            name = "ships_lambda"

            def build_aux(self, tables: Tables, rng: Any) -> Any:
                rdd = self._rdd  # whatever RDD the harness handed us
                return rdd.map_partitions(lambda part: [sum(part)])

        diags = check_query_pickleability(ShipsLambda)
        (diag,) = [d for d in diags if d.code == "UPA014"]
        assert diag.severity == Severity.WARNING
        assert "lambda" in diag.message
        assert "map_partitions" in diag.message

    def test_nested_def_shipped_into_rdd_operator_flagged(self):
        class ShipsNestedDef(_FixtureBase):
            name = "ships_nested"

            def build_aux(self, tables: Tables, rng: Any) -> Any:
                def per_partition(part):
                    return [len(list(part))]

                return self._rdd.map_partitions(per_partition)

        diags = check_query_pickleability(ShipsNestedDef)
        assert any(
            d.code == "UPA014" and "per_partition" in d.message
            for d in diags
        )

    def test_closure_over_unpicklable_value_flagged(self):
        import threading

        lock = threading.Lock()

        def make_mapper():
            def map_record(self, record: Row, aux: Any) -> float:
                with lock:
                    return float(record["v"])

            return map_record

        class ClosesOverLock(_FixtureBase):
            name = "closes_over_lock"
            map_record = make_mapper()

        diags = check_query_pickleability(ClosesOverLock)
        assert any(
            d.code == "UPA014" and "lock" in d.message
            for d in diags
        )

    def test_unpicklable_instance_attribute_flagged(self):
        import threading

        query = _FixtureBase()
        query._guard = threading.Lock()
        diags = check_query_pickleability(query)
        (diag,) = [d for d in diags if d.code == "UPA014"]
        assert "_guard" in diag.message
        assert diag.severity == Severity.WARNING

    def test_clean_query_instance_has_no_findings(self):
        assert check_query_pickleability(_FixtureBase()) == []

    def test_module_level_callable_class_is_clean(self):
        # The documented fix: a __slots__ callable shipped by reference.
        class UsesModuleHelper(_FixtureBase):
            name = "uses_helper"

            def build_aux(self, tables: Tables, rng: Any) -> Any:
                return self._rdd.map_partitions(np.sum)

        assert check_query_pickleability(UsesModuleHelper) == []

    def test_pass_runs_inside_lint_query(self):
        import threading

        query = _FixtureBase()
        query._guard = threading.Lock()
        from repro.staticcheck import lint_query

        diags = lint_query(query, include_plan=False)
        assert any(d.code == "UPA014" for d in diags)


class TestWorkloadsClean:
    def test_all_nine_workloads_have_no_error_diagnostics(self):
        diags = lint_workloads()
        assert _errors(diags) == [], render_text(_errors(diags))

    def test_all_nine_workloads_have_no_warnings_either(self):
        diags = lint_workloads()
        warnings = [d for d in diags if d.severity == Severity.WARNING]
        assert warnings == [], render_text(warnings)


class TestStrictMode:
    @staticmethod
    def _tiny_tables() -> Tables:
        return {"t": [{"v": float(i)} for i in range(8)]}

    def test_strict_gate_rejects_impure_query_before_spend(self):
        from repro.dp import PrivacyAccountant

        acct = PrivacyAccountant(total_epsilon=1.0)
        session = UPASession(
            UPAConfig(sample_size=4, seed=0, strict=True), accountant=acct
        )
        with pytest.raises(StaticAnalysisError) as excinfo:
            session.run(RandomMapperQuery(), self._tiny_tables(), epsilon=0.5)
        assert any(d.code == "UPA001" for d in excinfo.value.diagnostics)
        assert acct.spent() == (0.0, 0.0)  # rejected before charging

    def test_strict_gate_runs_validate_monoid(self):
        class RuntimeNonCommutative(_FixtureBase):
            """Statically clean, dynamically non-commutative."""

            name = "sneaky"

            def map_record(self, record: Row, aux: Any) -> float:
                return float(record["v"])

            def combine(self, a: float, b: float) -> float:
                return a + b * 0.5  # statically all-commutative ops

        session = UPASession(UPAConfig(sample_size=4, seed=0, strict=True))
        with pytest.raises(QueryShapeError):
            session.run(RuntimeNonCommutative(), self._tiny_tables(),
                        epsilon=0.5)

    def test_strict_mode_passes_clean_query(self):
        session = UPASession(UPAConfig(sample_size=4, seed=0, strict=True))
        result = session.run(_FixtureBase(), self._tiny_tables(), epsilon=0.5)
        assert result.plain_output[0] == 8.0
        # The gate caches per query class: a second run (distinct data,
        # so RANGE ENFORCER does not match it as a resubmission) does
        # not re-analyze the class.
        assert len(session._lint_cleared) == 1
        bigger = {"t": [{"v": float(i)} for i in range(30)]}
        session.run(_FixtureBase(), bigger, epsilon=0.5)
        assert len(session._lint_cleared) == 1

    def test_non_finite_epsilon_rejected(self):
        session = UPASession(UPAConfig(sample_size=4, seed=0))
        with pytest.raises(Exception, match="finite"):
            session.run(_FixtureBase(), self._tiny_tables(),
                        epsilon=float("inf"))


class TestRenderersAndRegistry:
    def test_every_diagnostic_code_is_registered(self):
        assert set(CODE_REGISTRY) == {
            "UPA001", "UPA002", "UPA003", "UPA004", "UPA005", "UPA006",
            "UPA010", "UPA011", "UPA012", "UPA013", "UPA014", "UPA015",
            "UPA101", "UPA102", "UPA103", "UPA104",
            "UPA201", "UPA202", "UPA203",
            "UPA301", "UPA302", "UPA303", "UPA304", "UPA305",
        }

    def test_json_renderer_round_trips(self):
        diags = check_query(RandomMapperQuery())
        payload = json.loads(render_json(diags))
        assert payload["errors"] >= 1
        assert payload["diagnostics"][0]["code"].startswith("UPA")

    def test_text_renderer_mentions_code_and_severity(self):
        diags = check_query(NonCommutativeQuery())
        text = render_text(diags)
        assert "UPA004" in text and "error" in text

    def test_unknown_code_rejected(self):
        from repro.staticcheck import make_diagnostic

        with pytest.raises(KeyError):
            make_diagnostic("UPA999", "nope")


class TestCLIAndReport:
    def test_run_lint_over_workloads_and_examples_is_error_free(self):
        # leaky_pipeline.py is the taint pass's deliberately-bad
        # fixture; everything else must stay clean.
        report = run_lint(
            paths=["examples"],
            exclude=["examples/leaky_pipeline.py"],
        )
        assert report.ok, render_text(report.errors)
        assert report.exit_code == 0

    def test_cli_lint_json(self, capsys):
        code = cli_main([
            "lint", "--json", "--no-workloads", "examples",
            "--exclude", "examples/leaky_pipeline.py",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["errors"] == 0

    def test_cli_lint_nonzero_on_error(self, tmp_path, capsys):
        bad = tmp_path / "bad_script.py"
        bad.write_text(
            "session = UPASession(accountant=a)\n"
            "session.run(q, t, epsilon=0.0)\n"
        )
        code = cli_main(["lint", "--no-workloads", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "UPA202" in out

    def test_cli_lint_single_workload(self, capsys):
        code = cli_main(["lint", "--workload", "tpch1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out


class TestAccountantHardening:
    def test_repr_shows_spend_and_remaining(self):
        from repro.dp import PrivacyAccountant

        acct = PrivacyAccountant(total_epsilon=1.0)
        acct.charge(0.25, label="q")
        text = repr(acct)
        assert "0.25" in text and "0.75" in text and "queries=1" in text

    def test_non_finite_parameters_rejected(self):
        from repro.common.errors import DPError
        from repro.dp import PrivacyAccountant

        for bad in (float("nan"), float("inf")):
            with pytest.raises(DPError):
                PrivacyAccountant(total_epsilon=bad)
        acct = PrivacyAccountant(total_epsilon=1.0, total_delta=1e-6)
        with pytest.raises(DPError):
            acct.charge(float("nan"))
        with pytest.raises(DPError):
            acct.charge(0.1, delta=float("inf"))

    def test_spent_and_charge_agree(self):
        from repro.dp import PrivacyAccountant

        acct = PrivacyAccountant(total_epsilon=1.0, total_delta=1e-5)
        acct.charge(0.3, delta=2e-6, label="a")
        acct.charge(0.2, delta=3e-6, label="b")
        eps, delta = acct.spent()
        assert eps == pytest.approx(0.5)
        assert delta == pytest.approx(5e-6)
        assert acct.remaining_epsilon() == pytest.approx(0.5)
