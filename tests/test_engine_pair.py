"""Unit tests for key-value RDD operations (shuffle-backed)."""

import pytest

from repro.engine import EngineContext
from repro.engine.metrics import MetricsRegistry
from repro.engine.partitioner import HashPartitioner


@pytest.fixture
def pairs(ctx):
    return ctx.parallelize(
        [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)], 3
    )


class TestAggregationsByKey:
    def test_reduce_by_key(self, pairs):
        out = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert out == {"a": 4, "b": 7, "c": 4}

    def test_reduce_by_key_partition_count(self, pairs):
        out = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=7)
        assert out.num_partitions == 7
        assert dict(out.collect()) == {"a": 4, "b": 7, "c": 4}

    def test_fold_by_key(self, pairs):
        out = dict(pairs.fold_by_key(10, lambda a, b: a + b).collect())
        # zero applied once per key per map-side bucket; here keys are
        # spread so each first-seen value is folded with the zero.
        assert out["c"] == 14

    def test_aggregate_by_key(self, pairs):
        out = dict(
            pairs.aggregate_by_key(
                (0, 0),
                lambda acc, v: (acc[0] + v, acc[1] + 1),
                lambda a, b: (a[0] + b[0], a[1] + b[1]),
            ).collect()
        )
        assert out == {"a": (4, 2), "b": (7, 2), "c": (4, 1)}

    def test_group_by_key(self, pairs):
        out = {k: sorted(v) for k, v in pairs.group_by_key().collect()}
        assert out == {"a": [1, 3], "b": [2, 5], "c": [4]}

    def test_combine_by_key_counts(self, pairs):
        out = dict(
            pairs.combine_by_key(
                lambda v: 1, lambda acc, v: acc + 1, lambda a, b: a + b
            ).collect()
        )
        assert out == {"a": 2, "b": 2, "c": 1}

    def test_count_by_key(self, pairs):
        assert pairs.count_by_key() == {"a": 2, "b": 2, "c": 1}

    def test_map_values(self, pairs):
        out = dict(pairs.reduce_by_key(lambda a, b: a + b).map_values(str).collect())
        assert out == {"a": "4", "b": "7", "c": "4"}

    def test_flat_map_values(self, ctx):
        rdd = ctx.parallelize([("k", [1, 2])])
        assert rdd.flat_map_values(lambda v: v).collect() == [("k", 1), ("k", 2)]

    def test_keys_values(self, pairs):
        assert sorted(pairs.keys().collect()) == ["a", "a", "b", "b", "c"]
        assert sorted(pairs.values().collect()) == [1, 2, 3, 4, 5]

    def test_collect_as_map(self, ctx):
        assert ctx.parallelize([("x", 1)]).collect_as_map() == {"x": 1}

    def test_lookup(self, pairs):
        assert sorted(pairs.lookup("a")) == [1, 3]
        assert pairs.lookup("zzz") == []


class TestJoins:
    @pytest.fixture
    def left(self, ctx):
        return ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 2)

    @pytest.fixture
    def right(self, ctx):
        return ctx.parallelize([(1, "x"), (3, "y")], 2)

    def test_inner_join(self, left, right):
        out = sorted(left.join(right).collect())
        assert out == [(1, ("a", "x")), (1, ("c", "x"))]

    def test_left_outer_join(self, left, right):
        out = sorted(left.left_outer_join(right).collect())
        assert out == [(1, ("a", "x")), (1, ("c", "x")), (2, ("b", None))]

    def test_right_outer_join(self, left, right):
        out = sorted(left.right_outer_join(right).collect())
        assert out == [(1, ("a", "x")), (1, ("c", "x")), (3, (None, "y"))]

    def test_full_outer_join(self, left, right):
        out = sorted(left.full_outer_join(right).collect())
        assert out == [
            (1, ("a", "x")),
            (1, ("c", "x")),
            (2, ("b", None)),
            (3, (None, "y")),
        ]

    def test_semi_join(self, left, right):
        assert sorted(left.semi_join(right).collect()) == [(1, "a"), (1, "c")]

    def test_anti_join(self, left, right):
        assert left.anti_join(right).collect() == [(2, "b")]

    def test_subtract_by_key(self, left, right):
        assert left.subtract_by_key(right).collect() == [(2, "b")]

    def test_cogroup(self, left, right):
        out = {
            k: (sorted(a), sorted(b))
            for k, (a, b) in left.cogroup(right).collect()
        }
        assert out == {
            1: (["a", "c"], ["x"]),
            2: (["b"], []),
            3: ([], ["y"]),
        }

    def test_join_one_to_many_multiplicity(self, ctx):
        left = ctx.parallelize([(1, "l")] * 3, 2)
        right = ctx.parallelize([(1, "r")] * 4, 2)
        assert left.join(right).count() == 12

    def test_join_empty_side(self, ctx, left=None):
        left_rdd = ctx.parallelize([(1, "a")])
        assert left_rdd.join(ctx.empty_rdd()).collect() == []


class TestShuffleBehaviour:
    def test_shuffle_counted_in_metrics(self, ctx):
        pairs = ctx.parallelize([("k", i) for i in range(10)], 4)
        before = ctx.metrics.get(MetricsRegistry.SHUFFLES)
        pairs.reduce_by_key(lambda a, b: a + b).collect()
        assert ctx.metrics.get(MetricsRegistry.SHUFFLES) == before + 1

    def test_map_side_combine_reduces_traffic(self, ctx):
        # 100 records, 1 key, 4 partitions: map-side combine sends at
        # most one record per map partition.
        pairs = ctx.parallelize([("k", 1)] * 100, 4)
        before = ctx.metrics.get(MetricsRegistry.RECORDS_SHUFFLED)
        pairs.reduce_by_key(lambda a, b: a + b).collect()
        shuffled = ctx.metrics.get(MetricsRegistry.RECORDS_SHUFFLED) - before
        assert shuffled <= 4

    def test_partition_by_no_combine_sends_everything(self, ctx):
        pairs = ctx.parallelize([("k", 1)] * 100, 4)
        before = ctx.metrics.get(MetricsRegistry.RECORDS_SHUFFLED)
        pairs.partition_by(HashPartitioner(2)).collect()
        shuffled = ctx.metrics.get(MetricsRegistry.RECORDS_SHUFFLED) - before
        assert shuffled == 100

    def test_shuffle_executed_once_per_shuffled_rdd(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("b", 2)], 2)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        before = ctx.metrics.get(MetricsRegistry.SHUFFLES)
        reduced.collect()
        reduced.collect()  # second action reuses stored shuffle output
        assert ctx.metrics.get(MetricsRegistry.SHUFFLES) == before + 1

    def test_same_key_lands_in_same_partition(self, ctx):
        pairs = ctx.parallelize([(i % 5, i) for i in range(100)], 4)
        located = pairs.partition_by(HashPartitioner(3))
        chunks = located.glom().collect()
        for chunk in chunks:
            keys_here = {k for k, _v in chunk}
            for other in chunks:
                if other is chunk:
                    continue
                assert keys_here.isdisjoint({k for k, _v in other})

    def test_threaded_shuffle_matches_sequential(self, ctx, threaded_ctx):
        data = [(i % 11, i) for i in range(500)]
        seq = dict(
            ctx.parallelize(data, 8).reduce_by_key(lambda a, b: a + b).collect()
        )
        thr = dict(
            threaded_ctx.parallelize(data, 8)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert seq == thr
