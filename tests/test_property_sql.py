"""Property-based tests for the SQL layer.

The optimizer must be semantics-preserving on randomized plans, and the
physical executor must match a straight-line Python reference for
randomized filter/project/aggregate pipelines.
"""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import SQLSession, col, count_star, sum_
from repro.sql.expr import BinaryOp, Expression, lit

ROWS = st.lists(
    st.fixed_dictionaries(
        {
            "a": st.integers(-20, 20),
            "b": st.integers(0, 5),
            "c": st.sampled_from(["x", "y", "z"]),
        }
    ),
    max_size=40,
)

COMPARISONS = ["<", "<=", ">", ">=", "=", "<>"]


@st.composite
def predicates(draw) -> Expression:
    """A random boolean expression over columns a, b, c."""
    depth = draw(st.integers(0, 2))

    def leaf() -> Expression:
        which = draw(st.integers(0, 2))
        if which == 0:
            op = draw(st.sampled_from(COMPARISONS))
            return BinaryOp(op, col("a"), lit(draw(st.integers(-20, 20))))
        if which == 1:
            op = draw(st.sampled_from(COMPARISONS))
            return BinaryOp(op, col("b"), lit(draw(st.integers(0, 5))))
        return col("c") == lit(draw(st.sampled_from(["x", "y", "z"])))

    expr = leaf()
    for _ in range(depth):
        connective = draw(st.sampled_from(["and", "or"]))
        expr = BinaryOp(connective, expr, leaf())
    return expr


class TestOptimizerEquivalence:
    @given(rows=ROWS, predicate=predicates())
    @settings(max_examples=50, deadline=None)
    def test_filter_chain_same_with_and_without_optimizer(
        self, rows, predicate
    ):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        df = (
            session.table("t")
            .filter(predicate)
            .select("a", "b")
            .filter(col("a") >= -20)
        )
        optimized = df.collect()
        session.enable_optimizer = False
        unoptimized = df.collect()
        assert optimized == unoptimized

    @given(rows=ROWS, predicate=predicates())
    @settings(max_examples=50, deadline=None)
    def test_filter_matches_python_reference(self, rows, predicate):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        got = session.table("t").filter(predicate).count()
        expected = sum(
            1 for row in (rows or [{"a": 0, "b": 0, "c": "x"}])
            if predicate.eval(row)
        )
        assert got == expected

    @given(rows=ROWS)
    @settings(max_examples=50, deadline=None)
    def test_group_by_matches_reference(self, rows):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        out = {
            r["b"]: (r["n"], r["s"])
            for r in session.table("t")
            .group_by("b")
            .agg(count_star("n"), sum_(col("a"), "s"))
            .collect()
        }
        expected = {}
        for row in rows or [{"a": 0, "b": 0, "c": "x"}]:
            n, s = expected.get(row["b"], (0, 0))
            expected[row["b"]] = (n + 1, s + row["a"])
        assert out == expected

    @given(rows=ROWS, predicate=predicates())
    @settings(max_examples=30, deadline=None)
    def test_join_pushdown_equivalence(self, rows, predicate):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        session.create_table("d", [{"k": i, "w": i * 2} for i in range(6)])
        df = (
            session.table("t")
            .join(session.table("d"), on=[("b", "k")])
            .filter(predicate)
            .agg(count_star("n"))
        )
        optimized = df.scalar()
        session.enable_optimizer = False
        assert df.scalar() == optimized
