"""Property-based tests for the SQL layer.

The optimizer must be semantics-preserving on randomized plans, the
physical executor must match a straight-line Python reference for
randomized filter/project/aggregate pipelines, and the expression
compiler (repro.sql.compiler) must agree with interpreted ``eval``
*exactly* — value, None-ness and raised-exception behaviour — on
randomized expression trees over rows containing NULLs.
"""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import SQLSession, col, count_star, sum_
from repro.sql.compiler import compile_expression, compile_predicate
from repro.sql.expr import (
    BinaryOp,
    CaseWhen,
    Expression,
    FuncCall,
    InOp,
    IsNullOp,
    LikeOp,
    UnaryOp,
    lit,
)

ROWS = st.lists(
    st.fixed_dictionaries(
        {
            "a": st.integers(-20, 20),
            "b": st.integers(0, 5),
            "c": st.sampled_from(["x", "y", "z"]),
        }
    ),
    max_size=40,
)

COMPARISONS = ["<", "<=", ">", ">=", "=", "<>"]


@st.composite
def predicates(draw) -> Expression:
    """A random boolean expression over columns a, b, c."""
    depth = draw(st.integers(0, 2))

    def leaf() -> Expression:
        which = draw(st.integers(0, 2))
        if which == 0:
            op = draw(st.sampled_from(COMPARISONS))
            return BinaryOp(op, col("a"), lit(draw(st.integers(-20, 20))))
        if which == 1:
            op = draw(st.sampled_from(COMPARISONS))
            return BinaryOp(op, col("b"), lit(draw(st.integers(0, 5))))
        return col("c") == lit(draw(st.sampled_from(["x", "y", "z"])))

    expr = leaf()
    for _ in range(depth):
        connective = draw(st.sampled_from(["and", "or"]))
        expr = BinaryOp(connective, expr, leaf())
    return expr


class TestOptimizerEquivalence:
    @given(rows=ROWS, predicate=predicates())
    @settings(max_examples=50, deadline=None)
    def test_filter_chain_same_with_and_without_optimizer(
        self, rows, predicate
    ):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        df = (
            session.table("t")
            .filter(predicate)
            .select("a", "b")
            .filter(col("a") >= -20)
        )
        optimized = df.collect()
        session.enable_optimizer = False
        unoptimized = df.collect()
        assert optimized == unoptimized

    @given(rows=ROWS, predicate=predicates())
    @settings(max_examples=50, deadline=None)
    def test_filter_matches_python_reference(self, rows, predicate):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        got = session.table("t").filter(predicate).count()
        expected = sum(
            1 for row in (rows or [{"a": 0, "b": 0, "c": "x"}])
            if predicate.eval(row)
        )
        assert got == expected

    @given(rows=ROWS)
    @settings(max_examples=50, deadline=None)
    def test_group_by_matches_reference(self, rows):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        out = {
            r["b"]: (r["n"], r["s"])
            for r in session.table("t")
            .group_by("b")
            .agg(count_star("n"), sum_(col("a"), "s"))
            .collect()
        }
        expected = {}
        for row in rows or [{"a": 0, "b": 0, "c": "x"}]:
            n, s = expected.get(row["b"], (0, 0))
            expected[row["b"]] = (n + 1, s + row["a"])
        assert out == expected

    @given(rows=ROWS, predicate=predicates())
    @settings(max_examples=30, deadline=None)
    def test_join_pushdown_equivalence(self, rows, predicate):
        session = SQLSession()
        session.create_table("t", rows or [{"a": 0, "b": 0, "c": "x"}])
        session.create_table("d", [{"k": i, "w": i * 2} for i in range(6)])
        df = (
            session.table("t")
            .join(session.table("d"), on=[("b", "k")])
            .filter(predicate)
            .agg(count_star("n"))
        )
        optimized = df.scalar()
        session.enable_optimizer = False
        assert df.scalar() == optimized


# ---------------------------------------------------------------------------
# Compiler vs interpreter equivalence
# ---------------------------------------------------------------------------

#: rows with NULLs in every column so three-valued logic is exercised.
NULLABLE_ROWS = st.fixed_dictionaries(
    {
        "a": st.one_of(st.none(), st.integers(-10, 10)),
        "b": st.one_of(st.none(), st.integers(-3, 3)),
        "c": st.one_of(
            st.none(), st.sampled_from(["x", "yy", "special requests", ""])
        ),
    }
)

_PATTERNS = ["x%", "%s%", "%special%requests%", "_", "%y_", ""]


@st.composite
def expressions(draw, depth: int = 3) -> Expression:
    """A random expression tree covering every compilable node type."""
    if depth <= 0:
        which = draw(st.integers(0, 2))
        if which == 0:
            return col(draw(st.sampled_from(["a", "b", "c"])))
        if which == 1:
            return lit(draw(st.one_of(st.none(), st.integers(-10, 10))))
        return lit(draw(st.sampled_from(["x", "yy", ""])))

    kind = draw(st.integers(0, 8))
    sub = expressions(depth=depth - 1)
    if kind == 0:  # comparison / arithmetic / connective
        op = draw(
            st.sampled_from(
                COMPARISONS + ["+", "-", "*", "/", "and", "or"]
            )
        )
        return BinaryOp(op, draw(sub), draw(sub))
    if kind == 1:
        return UnaryOp(draw(st.sampled_from(["not", "-"])), draw(sub))
    if kind == 2:
        return LikeOp(
            draw(sub),
            draw(st.sampled_from(_PATTERNS)),
            negated=draw(st.booleans()),
        )
    if kind == 3:
        values = draw(
            st.lists(
                st.one_of(st.none(), st.integers(-5, 5),
                          st.sampled_from(["x", "yy"])),
                min_size=1, max_size=4,
            )
        )
        return InOp(draw(sub), [lit(v) for v in values],
                    negated=draw(st.booleans()))
    if kind == 4:
        return IsNullOp(draw(sub), negated=draw(st.booleans()))
    if kind == 5:
        branches = [
            (draw(sub), draw(sub))
            for _ in range(draw(st.integers(1, 3)))
        ]
        default = draw(sub) if draw(st.booleans()) else None
        return CaseWhen(branches, default)
    if kind == 6:
        name = draw(st.sampled_from(["abs", "coalesce", "length"]))
        n_args = 2 if name == "coalesce" else 1
        return FuncCall(name, [draw(sub) for _ in range(n_args)])
    if kind == 7:
        return draw(sub).alias("renamed")
    return draw(sub)


def _outcome(fn, row):
    """(value, type) on success, ('raise', exception type) on failure."""
    try:
        value = fn(row)
    except Exception as exc:  # noqa: BLE001 — parity includes errors
        return ("raise", type(exc))
    return (value, type(value))


class TestCompilerEquivalence:
    @given(row=NULLABLE_ROWS, expr=expressions())
    @settings(max_examples=300, deadline=None)
    def test_compiled_matches_interpreted(self, row, expr):
        compiled = compile_expression(expr)
        assert _outcome(compiled, row) == _outcome(expr.eval, row)

    @given(row=NULLABLE_ROWS, expr=expressions())
    @settings(max_examples=150, deadline=None)
    def test_compiled_predicate_matches_truthiness(self, row, expr):
        predicate = compile_predicate(expr)
        interpreted = _outcome(lambda r: bool(expr.eval(r)), row)
        assert _outcome(predicate, row) == interpreted

    @given(row=NULLABLE_ROWS, expr=expressions())
    @settings(max_examples=150, deadline=None)
    def test_missing_column_error_parity(self, row, expr):
        probe = {"q": 1}  # none of a/b/c present
        compiled = compile_expression(expr)
        assert _outcome(compiled, probe) == _outcome(expr.eval, probe)

    @given(rows=st.lists(NULLABLE_ROWS, min_size=1, max_size=30),
           predicate=expressions())
    @settings(max_examples=60, deadline=None)
    def test_sessions_agree_compiled_vs_interpreted(self, rows, predicate):
        def run(**kwargs):
            session = SQLSession(**kwargs)
            session.create_table("t", rows)
            try:
                return session.table("t").filter(predicate).collect()
            except Exception as exc:  # noqa: BLE001 — error parity
                return ("raise", type(exc))

        compiled = run()
        interpreted = run(compile_expressions=False)
        assert compiled == interpreted
