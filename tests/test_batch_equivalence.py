"""Batched monoid protocol: equivalence with the scalar monoid.

The batched kernels (``map_batch`` / ``prefix_suffix_batch`` /
``combine_batch`` / ``finalize_batch`` / ``fold_batch``) are a pure
performance overlay — every value they produce must match what the
scalar monoid methods produce, element for element.  These tests check
that property for all nine shipped workloads (7 TPC-H + KMeans +
Linear Regression) plus Logistic Regression and a sqlbridge-compiled
query, across batch sizes including the empty batch, and then compare
two full UPA sessions — one batched, one forced through the scalar
defaults — end to end.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np
import pytest

from repro.core.query import BATCH_METHODS, MapReduceQuery, Tables
from repro.core.session import UPAConfig, UPASession
from repro.mining import (
    KMeansQuery,
    LifeScienceConfig,
    LinearRegressionQuery,
    make_life_science_tables,
)
from repro.mining.logreg import LogisticRegressionQuery
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.workload import all_queries as tpch_queries

BATCH_SIZES = (0, 1, 17, 256)


@pytest.fixture(scope="module")
def big_tpch_tables() -> Tables:
    """TPC-H tables large enough for 256-record batches."""
    return TPCHGenerator(TPCHConfig(scale_rows=900, seed=3)).generate()


@pytest.fixture(scope="module")
def big_ml_tables() -> Tables:
    return make_life_science_tables(
        LifeScienceConfig(num_records=300, dim=4, num_clusters=3, seed=7)
    )


def _all_queries(tpch_tables: Tables, ml_tables: Tables
                 ) -> List[Tuple[MapReduceQuery, Tables]]:
    pairs: List[Tuple[MapReduceQuery, Tables]] = [
        (q, tpch_tables) for q in tpch_queries()
    ]
    pairs.append((KMeansQuery(num_clusters=3, dim=4), ml_tables))
    pairs.append((LinearRegressionQuery(dim=4), ml_tables))
    pairs.append((LogisticRegressionQuery(dim=4), ml_tables))
    return pairs


def scalarized(query: MapReduceQuery) -> MapReduceQuery:
    """A copy of ``query`` forced through the scalar batch defaults."""
    cls = type(query)
    scalar_cls = type(
        f"Scalarized{cls.__name__}",
        (cls,),
        {name: getattr(MapReduceQuery, name) for name in BATCH_METHODS},
    )
    clone = object.__new__(scalar_cls)
    clone.__dict__.update(query.__dict__)
    return clone


def _reference_loo(query: MapReduceQuery, records, aux) -> np.ndarray:
    """finalize(zero + fold(all-but-i)) through the scalar monoid only."""
    mapped = [query.map_record(r, aux) for r in records]
    rows = []
    for i in range(len(mapped)):
        agg = query.zero()
        for j, m in enumerate(mapped):
            if j != i:
                agg = query.combine(agg, m)
        rows.append(query.finalize(query.combine(query.zero(), agg), aux))
    if not rows:
        return np.empty((0, query.output_dim))
    return np.vstack(rows)


class TestKernelEquivalence:
    """Batched kernels vs literal scalar folds, per workload and size."""

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_all_workloads_loo_and_fold_match_scalar(
        self, big_tpch_tables, big_ml_tables, n
    ):
        for query, tables in _all_queries(big_tpch_tables, big_ml_tables):
            records = tables[query.protected_table][:n]
            aux = query.build_aux(tables)
            batch = query.map_batch(records, aux)
            assert query.batch_length(batch) == len(records), query.name

            # Leave-one-out pipeline (what removal neighbours use).
            loo = query.finalize_batch(
                query.combine_batch(
                    query.zero(), query.prefix_suffix_batch(batch)
                ),
                aux,
            )
            loo = np.asarray(loo, dtype=float)
            reference = _reference_loo(query, records, aux)
            assert loo.shape == (len(records), query.output_dim), query.name
            np.testing.assert_allclose(
                loo, reference, rtol=1e-9, atol=1e-12,
                err_msg=f"{query.name} loo mismatch at n={len(records)}",
            )

            # Full fold (what the final aggregate uses).
            folded = query.finalize(query.fold_batch(batch), aux)
            scalar_fold = query.finalize(
                query.fold(query.map_record(r, aux) for r in records), aux
            )
            np.testing.assert_allclose(
                np.asarray(folded, dtype=float),
                np.asarray(scalar_fold, dtype=float),
                rtol=1e-9, atol=1e-12,
                err_msg=f"{query.name} fold mismatch at n={len(records)}",
            )

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_combine_batch_with_nonzero_aggregate(
        self, big_tpch_tables, big_ml_tables, n
    ):
        """Addition neighbours: finalize(combine(f_x_agg, m)) per record."""
        for query, tables in _all_queries(big_tpch_tables, big_ml_tables):
            records = tables[query.protected_table][:n]
            base_records = tables[query.protected_table][n:n + 50]
            aux = query.build_aux(tables)
            agg = query.fold(query.map_record(r, aux) for r in base_records)
            batch = query.map_batch(records, aux)
            batched = np.asarray(
                query.finalize_batch(query.combine_batch(agg, batch), aux),
                dtype=float,
            )
            reference_rows = [
                query.finalize(
                    query.combine(agg, query.map_record(r, aux)), aux
                )
                for r in records
            ]
            reference = (
                np.vstack(reference_rows)
                if reference_rows
                else np.empty((0, query.output_dim))
            )
            np.testing.assert_allclose(
                batched, reference, rtol=1e-9, atol=1e-12,
                err_msg=f"{query.name} combine mismatch at n={len(records)}",
            )

    def test_empty_batch_shapes(self, big_tpch_tables, big_ml_tables):
        for query, tables in _all_queries(big_tpch_tables, big_ml_tables):
            aux = query.build_aux(tables)
            batch = query.map_batch([], aux)
            assert query.batch_length(batch) == 0, query.name
            out = query.finalize_batch(
                query.combine_batch(
                    query.zero(), query.prefix_suffix_batch(batch)
                ),
                aux,
            )
            assert np.asarray(out).shape == (0, query.output_dim), query.name
            # The empty fold is the monoid identity.
            folded = query.finalize(query.fold_batch(batch), aux)
            identity = query.finalize(query.zero(), aux)
            np.testing.assert_allclose(
                np.asarray(folded, dtype=float),
                np.asarray(identity, dtype=float),
            )

    def test_validate_monoid_cross_checks_batch_kernels(
        self, big_tpch_tables, big_ml_tables
    ):
        """validate_monoid now exercises the batched kernels too."""
        for query, tables in _all_queries(big_tpch_tables, big_ml_tables):
            query.validate_monoid(tables)

    def test_validate_monoid_rejects_broken_batch_kernel(
        self, big_tpch_tables
    ):
        from repro.common.errors import QueryShapeError
        from repro.tpch import query_by_name

        broken_cls = type(
            "BrokenBatch",
            (type(query_by_name("tpch1")),),
            {
                "prefix_suffix_batch":
                    lambda self, elements:
                        np.asarray(elements, dtype=float) * 2.0,
            },
        )
        broken = broken_cls()
        with pytest.raises(QueryShapeError):
            broken.validate_monoid(big_tpch_tables)

    def test_sqlbridge_compiled_query_batches(self, big_tpch_tables):
        from repro.core.sqlbridge import compile_sql

        query = compile_sql(
            "SELECT SUM(l_quantity) FROM lineitem WHERE l_discount >= 0.02",
            big_tpch_tables,
            "lineitem",
        )
        records = big_tpch_tables["lineitem"][:64]
        aux = query.build_aux(big_tpch_tables)
        batch = query.map_batch(records, aux)
        loo = query.finalize_batch(
            query.combine_batch(
                query.zero(), query.prefix_suffix_batch(batch)
            ),
            aux,
        )
        np.testing.assert_allclose(
            np.asarray(loo, dtype=float),
            _reference_loo(query, records, aux),
            rtol=1e-9,
        )


class TestSessionEquivalence:
    """Full pipeline: batched session vs scalar-forced session."""

    CONFIG = dict(sample_size=40, seed=123)

    def _run_pair(self, query, tables):
        batched = UPASession(UPAConfig(**self.CONFIG)).run(
            query, tables, epsilon=0.5
        )
        scalar = UPASession(UPAConfig(**self.CONFIG)).run(
            scalarized(query), tables, epsilon=0.5
        )
        return batched, scalar

    @pytest.mark.parametrize("name", ["tpch1", "tpch6"])
    def test_sum_workloads_bitwise_identical(self, name, tpch_tables):
        from repro.tpch import query_by_name

        batched, scalar = self._run_pair(query_by_name(name), tpch_tables)
        assert np.array_equal(batched.noisy_output, scalar.noisy_output)
        assert np.array_equal(batched.removal_outputs, scalar.removal_outputs)
        assert np.array_equal(
            batched.addition_outputs, scalar.addition_outputs
        )
        assert batched.local_sensitivity == scalar.local_sensitivity
        assert np.array_equal(
            batched.partition_outputs[0], scalar.partition_outputs[0]
        )
        assert np.array_equal(
            batched.partition_outputs[1], scalar.partition_outputs[1]
        )

    def test_ml_workloads_allclose(self, ml_tables):
        for query in (
            KMeansQuery(num_clusters=2, dim=3),
            LinearRegressionQuery(dim=3),
            LogisticRegressionQuery(dim=3),
        ):
            batched, scalar = self._run_pair(query, ml_tables)
            np.testing.assert_allclose(
                batched.noisy_output, scalar.noisy_output, rtol=1e-9,
                err_msg=query.name,
            )
            np.testing.assert_allclose(
                batched.removal_outputs, scalar.removal_outputs, rtol=1e-9,
                atol=1e-12, err_msg=query.name,
            )
            np.testing.assert_allclose(
                batched.addition_outputs, scalar.addition_outputs, rtol=1e-9,
                atol=1e-12, err_msg=query.name,
            )
            assert batched.local_sensitivity == pytest.approx(
                scalar.local_sensitivity, rel=1e-9
            )

    def test_naive_ablation_still_matches_reused(self, tpch_tables):
        from repro.tpch import query_by_name

        query = query_by_name("tpch6")
        reused = UPASession(UPAConfig(**self.CONFIG)).run(
            query, tpch_tables, epsilon=0.5
        )
        naive = UPASession(
            UPAConfig(reuse_intermediate=False, **self.CONFIG)
        ).run(query, tpch_tables, epsilon=0.5)
        np.testing.assert_allclose(
            reused.removal_outputs, naive.removal_outputs, rtol=1e-9
        )

    def test_tiny_dataset_smaller_than_sample(self):
        """n is lowered to |x|; removal pipeline sees a 3-element batch."""
        from repro.tpch import query_by_name

        query = query_by_name("tpch6")
        tables = TPCHGenerator(TPCHConfig(scale_rows=100, seed=1)).generate()
        tables["lineitem"] = tables["lineitem"][:3]
        result = UPASession(UPAConfig(sample_size=40, seed=9)).run(
            query, tables, epsilon=0.5
        )
        assert result.sample_size == 3
        assert result.removal_outputs.shape == (3, 1)
