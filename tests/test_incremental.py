"""Tests for the incremental session path (append/retire).

The contract under test is the one the performance claim rests on:
``session.append(records)`` / ``session.retire(count)`` release answers
that are **bitwise identical** to cold re-runs over the same grown or
shrunk dataset under fixed seeds — the incremental path may only skip
recomputation, never change results.  The cold reference session always
performs the same *sequence* of releases, so its per-run RNG streams
(sample draw, noise) line up with the incremental session's.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import EngineConfig
from repro.common.errors import DPError
from repro.core.session import UPAConfig, UPASession
from repro.dp.budget import PrivacyAccountant
from repro.engine.context import EngineContext
from repro.engine.fault import FaultInjector
from repro.engine.metrics import MetricsRegistry
from repro.obs.ledger import PrivacyLedger
from repro.workloads import all_workloads, workload_by_name

SEED = 11
SAMPLE = 60


def _engine(backend=None, partitions=2):
    if backend is None:
        return None
    return EngineContext(EngineConfig(
        backend=backend, max_workers=2, default_parallelism=partitions,
    ))


def _session(backend=None, **config):
    config.setdefault("seed", SEED)
    config.setdefault("sample_size", SAMPLE)
    cfg = UPAConfig(**config)
    return UPASession(cfg, engine=_engine(backend))


def _grown_tables(workload, scale_rows, delta_frac=0.1):
    """(tables with the protected tail held back, the held-back records).

    Everything is generated once, then the last ``delta_frac`` of the
    *protected* table is held back for appending — the base prefix and
    the appended tail are rows of one coherent dataset.  Sizing by
    fraction matters because workloads protect different tables whose
    row counts scale differently from ``scale_rows``.
    """
    tables = workload.make_tables(scale_rows, SEED)
    protected = workload.query.protected_table
    records = tables[protected]
    delta_n = max(2, int(len(records) * delta_frac))
    delta = records[-delta_n:]
    del records[-delta_n:]
    return tables, delta


def _fresh_copy(tables, protected):
    return {
        name: (list(rows) if name == protected else rows)
        for name, rows in tables.items()
    }


def _assert_results_equal(a, b):
    np.testing.assert_array_equal(a.noisy_output, b.noisy_output)
    np.testing.assert_array_equal(a.plain_output, b.plain_output)
    np.testing.assert_array_equal(a.removal_outputs, b.removal_outputs)
    np.testing.assert_array_equal(a.addition_outputs, b.addition_outputs)
    assert a.local_sensitivity == b.local_sensitivity


def _paired_release(do_incr, do_cold):
    """Run one release on both sessions and demand identical behavior.

    Count-style workloads can produce an output matching a prior
    release, sending RANGE ENFORCER into its separation loop, which may
    legitimately exhaust the sample (a DPError) — on *both* paths.
    Bitwise equivalence therefore means: same result, or the same
    failure.
    """
    try:
        r_i = do_incr()
    except DPError as exc:
        with pytest.raises(DPError, match="RANGE ENFORCER"):
            do_cold()
        assert "RANGE ENFORCER" in str(exc)
        return None
    r_c = do_cold()
    _assert_results_equal(r_i, r_c)
    return r_i


class TestAppendRetireEquivalence:
    @pytest.mark.parametrize(
        "name", [w.name for w in all_workloads()]
    )
    def test_bitwise_equal_to_cold_rerun(self, name):
        """run+append+retire == three cold releases, for all nine
        workloads (inline backend, small scale)."""
        workload = workload_by_name(name)
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 400)
        retire_n = max(1, len(delta) // 2)

        incr = _session()
        cold = _session()
        tab_i = _fresh_copy(tables, protected)
        tab_c = _fresh_copy(tables, protected)

        _paired_release(
            lambda: incr.run(workload.query, tab_i),
            lambda: cold.run(workload.query, tab_c),
        )

        tab_c[protected].extend(delta)
        _paired_release(
            lambda: incr.append(delta),
            lambda: cold.run(workload.query, tab_c),
        )

        del tab_c[protected][:retire_n]
        _paired_release(
            lambda: incr.retire(retire_n),
            lambda: cold.run(workload.query, tab_c),
        )

    @pytest.mark.parametrize("backend", ["inline", "threads", "processes"])
    def test_backends_bitwise_equal(self, backend):
        """tpch6 append path on every executor backend."""
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 1500, 0.04)

        incr = _session(backend=backend)
        cold = _session(backend=backend)
        try:
            tab_i = _fresh_copy(tables, protected)
            tab_c = _fresh_copy(tables, protected)
            incr.run(workload.query, tab_i)
            cold.run(workload.query, tab_c)
            half = len(delta) // 2
            r_i = incr.append(delta[:half])
            tab_c[protected].extend(delta[:half])
            r_c = cold.run(workload.query, tab_c)
            _assert_results_equal(r_i, r_c)
            # Second append actually reuses cached element blocks.
            r_i = incr.append(delta[half:])
            tab_c[protected].extend(delta[half:])
            r_c = cold.run(workload.query, tab_c)
            _assert_results_equal(r_i, r_c)
            assert incr._last_incremental["records_reused"] > 0
            assert incr._last_incremental["delta_fraction"] < 0.1
        finally:
            incr.engine.stop()
            cold.engine.stop()

    def test_block_reuse_metrics(self, monkeypatch):
        # Shrink the block size so the base spans many blocks and the
        # second append gets full-coverage hits on all but the tail.
        from repro.core import session as session_mod

        monkeypatch.setattr(session_mod, "_INCR_BLOCK_RECORDS", 128)
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 800, 0.05)
        base_len = len(tables[protected])
        half = len(delta) // 2
        session = _session()
        session.run(workload.query, tables)
        session.append(delta[:half])  # primes the element blocks
        session.append(delta[half:])
        m = session.engine.metrics
        assert m.get(MetricsRegistry.INCR_APPENDS) == 2
        assert m.get(MetricsRegistry.INCR_BLOCK_HITS) >= 1
        assert m.get(MetricsRegistry.INCR_RECORDS_REUSED) >= base_len
        assert m.get(MetricsRegistry.INCR_RECORDS_MAPPED) >= len(delta)
        assert 0.0 < m.get_gauge(MetricsRegistry.INCR_DELTA_FRACTION) < 0.1
        # The table grew in place.
        assert len(tables[protected]) == base_len + len(delta)

    def test_reuse_intermediate_ablation_stays_cold(self):
        """reuse_intermediate=False must bypass the incremental path."""
        workload = workload_by_name("tpch6")
        tables, delta = _grown_tables(workload, 300, 0.05)
        session = _session(reuse_intermediate=False)
        session.run(workload.query, tables)
        result = session.append(delta)
        assert result is not None
        assert session._last_incremental is None

    def test_append_requires_prior_run(self):
        session = _session()
        with pytest.raises(DPError, match="requires a completed run"):
            session.append([{"v": 1.0}])

    def test_append_rejects_empty_delta(self):
        workload = workload_by_name("tpch6")
        tables, _ = _grown_tables(workload, 300)
        session = _session()
        session.run(workload.query, tables)
        with pytest.raises(DPError, match="at least one record"):
            session.append([])

    def test_retire_bounds_checked(self):
        workload = workload_by_name("tpch6")
        tables, _ = _grown_tables(workload, 300)
        size = len(tables[workload.query.protected_table])
        session = _session()
        session.run(workload.query, tables)
        with pytest.raises(DPError, match="positive"):
            session.retire(0)
        with pytest.raises(DPError, match="empty the protected table"):
            session.retire(size)

    def test_append_after_external_mutation_raises(self):
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 300, 0.05)
        session = _session()
        session.run(workload.query, tables)
        tables[protected].append(delta[0])
        with pytest.raises(DPError, match="changed outside"):
            session.append(delta[1:])


class TestBudgetAndLedger:
    def test_each_release_charges_fresh_epsilon(self):
        workload = workload_by_name("tpch6")
        tables, delta = _grown_tables(workload, 800, 0.05)
        half = len(delta) // 2
        accountant = PrivacyAccountant(total_epsilon=1.0)
        session = UPASession(
            UPAConfig(seed=SEED, sample_size=SAMPLE),
            accountant=accountant,
        )
        session.run(workload.query, tables, epsilon=0.1)
        session.append(delta[:half], epsilon=0.2)
        session.append(delta[half:], epsilon=0.3)
        assert accountant.spent()[0] == pytest.approx(0.6)
        assert accountant.remaining_epsilon() == pytest.approx(0.4)

    def test_budget_exhaustion_stops_append(self):
        workload = workload_by_name("tpch6")
        tables, delta = _grown_tables(workload, 400, 0.05)
        accountant = PrivacyAccountant(total_epsilon=0.15)
        session = UPASession(
            UPAConfig(seed=SEED, sample_size=SAMPLE),
            accountant=accountant,
        )
        session.run(workload.query, tables, epsilon=0.1)
        with pytest.raises(DPError):
            session.append(delta, epsilon=0.1)

    def test_ledger_records_incremental_releases(self):
        workload = workload_by_name("tpch6")
        tables, delta = _grown_tables(workload, 800, 0.05)
        half = len(delta) // 2
        ledger = PrivacyLedger()
        session = UPASession(
            UPAConfig(seed=SEED, sample_size=SAMPLE), ledger=ledger,
        )
        session.run(workload.query, tables, epsilon=0.1)
        assert ledger.header["incremental"] is False
        session.append(delta[:half], epsilon=0.1)
        session.append(delta[half:], epsilon=0.1)
        assert ledger.header["incremental"] is True
        assert ledger.header["incremental_partitions_recomputed"] >= 1
        assert 0.0 < ledger.header["incremental_delta_fraction"] < 0.1
        assert "sql_plan_cache_evictions" in ledger.header
        entries = ledger.entries()
        assert len(entries) == 3
        assert all(e.epsilon_charged == 0.1 for e in entries)


class TestInvalidation:
    def test_stop_invalidates_cached_partials(self):
        """EngineContext.stop() between releases: the next append must
        recompute, never merge pre-stop partials, and stay bitwise
        equal to a cold rerun."""
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 500)
        half = len(delta) // 2

        incr = _session()
        cold = _session()
        tab_i = _fresh_copy(tables, protected)
        tab_c = _fresh_copy(tables, protected)
        incr.run(workload.query, tab_i)
        cold.run(workload.query, tab_c)
        incr.append(delta[:half])
        tab_c[protected].extend(delta[:half])
        cold.run(workload.query, tab_c)

        incr.engine.stop()  # clears the block store, bumps the epoch
        invalidations_before = incr.engine.metrics.get(
            MetricsRegistry.INCR_INVALIDATIONS
        )
        r_i = incr.append(delta[half:])
        tab_c[protected].extend(delta[half:])
        r_c = cold.run(workload.query, tab_c)
        _assert_results_equal(r_i, r_c)
        assert incr.engine.metrics.get(
            MetricsRegistry.INCR_INVALIDATIONS
        ) > invalidations_before
        # Everything was remapped: nothing could be reused post-stop.
        assert incr._last_incremental["records_reused"] == 0

    def test_respawn_never_merges_stale_partials(self):
        """Simulated worker respawn (what the scheduler does after
        BrokenProcessPool) plus deliberately poisoned pre-respawn
        blocks: the poison must be unreachable."""
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 500)
        half = len(delta) // 2

        incr = _session()
        cold = _session()
        tab_i = _fresh_copy(tables, protected)
        tab_c = _fresh_copy(tables, protected)
        incr.run(workload.query, tab_i)
        cold.run(workload.query, tab_c)
        incr.append(delta[:half])
        tab_c[protected].extend(delta[:half])
        cold.run(workload.query, tab_c)

        # Poison every cached element block under the old epoch, then
        # respawn.  If the epoch tag failed to invalidate, the poison
        # would flow into the next release's aggregates.
        state = incr._incr
        old_epoch = incr.engine.cache_epoch()
        store = incr.engine.block_store
        for b in range(0, 4):
            if store.contains((state.cache_rdd_id, b)):
                store.put_tagged(
                    (state.cache_rdd_id, b), old_epoch,
                    (b * state.block_records, [1e18] * 8),
                )
        incr.engine.metrics.incr(MetricsRegistry.WORKER_RESPAWNS)

        r_i = incr.append(delta[half:])
        tab_c[protected].extend(delta[half:])
        r_c = cold.run(workload.query, tab_c)
        _assert_results_equal(r_i, r_c)
        assert incr._last_incremental["records_reused"] == 0

    def test_fault_injection_equivalence(self):
        """Injected task failures (threads backend, retried from
        lineage) must not perturb an incremental release."""
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 800, 0.05)

        plain = _session(backend="threads")
        faulty = _session(backend="threads")
        faulty.engine.install_fault_injector(
            FaultInjector(failure_probability=0.25, max_failures=3, seed=5)
        )
        try:
            tab_p = _fresh_copy(tables, protected)
            tab_f = _fresh_copy(tables, protected)
            plain.run(workload.query, tab_p)
            faulty.run(workload.query, tab_f)
            r_p = plain.append(delta)
            r_f = faulty.append(delta)
            _assert_results_equal(r_p, r_f)
        finally:
            plain.engine.stop()
            faulty.engine.stop()

    def test_external_mutation_falls_back_to_cold_run(self):
        """Mutating the table outside append() must not corrupt run():
        the session detects it and reruns cold, still bitwise equal."""
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, delta = _grown_tables(workload, 800, 0.05)
        half = len(delta) // 2

        incr = _session()
        cold = _session()
        tab_i = _fresh_copy(tables, protected)
        tab_c = _fresh_copy(tables, protected)
        incr.run(workload.query, tab_i)
        cold.run(workload.query, tab_c)
        incr.append(delta[:half])  # primes the incremental state
        tab_c[protected].extend(delta[:half])
        cold.run(workload.query, tab_c)

        tab_i[protected].extend(delta[half:])  # behind the session's back
        tab_c[protected].extend(delta[half:])
        r_i = incr.run(workload.query, tab_i)
        r_c = cold.run(workload.query, tab_c)
        _assert_results_equal(r_i, r_c)
        assert incr._last_incremental is None  # ran cold
        assert incr.engine.metrics.get(
            MetricsRegistry.INCR_INVALIDATIONS
        ) >= 1

    @settings(max_examples=10, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("append"), st.integers(1, 30)),
                st.tuples(st.just("retire"), st.integers(1, 40)),
                st.tuples(st.just("stop"), st.just(0)),
            ),
            min_size=1, max_size=5,
        )
    )
    def test_random_append_retire_sequences_bitwise_equal(self, ops):
        """Property: any interleaving of append/retire/engine-stop
        produces the same releases as a cold mirror session that only
        ever mutates the table externally and reruns."""
        workload = workload_by_name("tpch6")
        protected = workload.query.protected_table
        tables, pool = _grown_tables(workload, 500, 0.4)

        incr = _session(sample_size=40)
        cold = _session(sample_size=40)
        tab_i = _fresh_copy(tables, protected)
        tab_c = _fresh_copy(tables, protected)
        _assert_results_equal(
            incr.run(workload.query, tab_i),
            cold.run(workload.query, tab_c),
        )
        taken = 0
        for kind, n in ops:
            if kind == "stop":
                incr.engine.stop()
                continue
            if kind == "append":
                chunk = pool[taken:taken + n]
                if not chunk:  # held-back pool exhausted
                    continue
                taken += len(chunk)
                tab_c[protected].extend(chunk)
                do_incr = lambda chunk=chunk: incr.append(chunk)
            else:
                n = min(n, len(tab_i[protected]) - 1)
                del tab_c[protected][:n]
                do_incr = lambda n=n: incr.retire(n)
            # The mirror's run counter must advance in lockstep, so
            # every release is compared against a cold run with the
            # same per-run RNG stream.
            result = _paired_release(
                do_incr, lambda: cold.run(workload.query, tab_c)
            )
            if result is None:
                # Both sessions exhausted RANGE ENFORCER identically —
                # behavior matched; nothing more to compare.
                break


class TestEvictionCounters:
    def test_sql_plan_cache_evictions_counted(self):
        from repro.sql.session import SQLSession

        sql = SQLSession(plan_cache_size=2)
        rows = [{"v": float(i)} for i in range(8)]
        sql.create_table("t", rows)
        for threshold in (1.0, 2.0, 3.0, 4.0):
            sql.sql(f"SELECT COUNT(*) AS n FROM t WHERE v > {threshold}").collect()
        m = sql.engine.metrics
        assert m.get(MetricsRegistry.SQL_PLAN_CACHE_EVICTIONS) >= 1
        # The cache never holds more than its configured size.
        assert len(sql._plan_cache) <= 2

    def test_bridge_cache_evictions_counted(self, monkeypatch):
        from repro.core import sqlbridge
        from repro.tpch.queries.base import random_lineitem

        monkeypatch.setattr(sqlbridge, "_BRIDGE_CACHE_SIZE", 1)
        sqlbridge.clear_bridge_cache()
        workload = workload_by_name("tpch6")
        tables = workload.make_tables(300, SEED)
        session = _session()
        for cutoff in (24, 10):
            session.run_sql(
                "SELECT COUNT(*) AS n FROM lineitem "
                f"WHERE l_quantity < {cutoff}",
                tables, protected_table="lineitem",
                domain_sampler=random_lineitem,
            )
        sqlbridge.clear_bridge_cache()
        assert session.engine.metrics.get(
            MetricsRegistry.SQL_PLAN_CACHE_EVICTIONS
        ) >= 1
