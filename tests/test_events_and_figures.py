"""Tests for the job event listener and the text figure renderer."""

import numpy as np
import pytest

from repro.analysis.figures import ascii_histogram, render_fig3_panel
from repro.engine import EngineContext
from repro.engine.events import JobListener


class TestJobListener:
    def test_records_jobs(self, ctx):
        listener = JobListener()
        ctx.install_job_listener(listener)
        ctx.parallelize(range(10), 2).map(lambda v: v).collect()
        events = listener.events()
        assert len(events) == 1
        event = events[0]
        assert event.num_partitions == 2
        assert event.task_attempts == 2
        assert event.rdd_type == "MapPartitionsRDD"
        assert event.duration_seconds >= 0

    def test_multiple_jobs_accumulate(self, ctx):
        listener = JobListener()
        ctx.install_job_listener(listener)
        rdd = ctx.parallelize(range(10), 2)
        rdd.count()
        rdd.sum()
        assert len(listener.events()) == 2
        assert listener.total_duration() >= 0

    def test_shuffle_produces_extra_jobs(self, ctx):
        listener = JobListener()
        ctx.install_job_listener(listener)
        ctx.parallelize([("a", 1), ("b", 2)], 2).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        # map-side shuffle job + reduce-side collect job
        assert len(listener.events()) >= 2

    def test_retries_counted_in_attempts(self):
        from repro.common.config import EngineConfig
        from repro.engine import FaultInjector

        ctx = EngineContext(EngineConfig(max_task_retries=5))
        listener = JobListener()
        ctx.install_job_listener(listener)
        ctx.install_fault_injector(
            FaultInjector(failure_probability=0.5, max_failures=3, seed=1)
        )
        ctx.parallelize(range(20), 4).collect()
        event = listener.events()[0]
        assert event.task_attempts > 4  # 4 tasks + at least one retry

    def test_capacity_bounded(self):
        listener = JobListener(capacity=3)
        from repro.engine.events import JobEvent

        for i in range(10):
            listener.record(JobEvent(i, i, "X", 1, 0.0, 1))
        assert len(listener.events()) == 3
        # strictly the newest events, oldest first
        assert [e.stage_id for e in listener.events()] == [7, 8, 9]
        assert listener.capacity == 3

    def test_capacity_eviction_under_concurrent_record(self):
        """Eviction stays ordered and bounded with racing writers."""
        import threading

        from repro.engine.events import JobEvent

        capacity = 16
        per_thread = 200
        num_threads = 8
        listener = JobListener(capacity=capacity)

        def write(thread_id: int) -> None:
            for i in range(per_thread):
                listener.record(
                    JobEvent(thread_id * per_thread + i, thread_id,
                             "X", 1, 0.0, 1)
                )

        threads = [
            threading.Thread(target=write, args=(t,))
            for t in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        events = listener.events()
        assert len(events) == capacity
        # Each thread writes increasing stage_ids, so whatever survives
        # from one thread must be an ordered suffix of its stream —
        # i.e. eviction dropped that thread's *oldest* events first.
        for thread_id in range(num_threads):
            mine = [e.stage_id for e in events if e.rdd_id == thread_id]
            assert mine == sorted(mine)
            if mine:
                assert mine[-1] == (thread_id + 1) * per_thread - 1

    def test_summary_and_slow_jobs(self, ctx):
        listener = JobListener()
        ctx.install_job_listener(listener)
        ctx.parallelize(range(5), 1).collect()
        assert "stage=" in listener.summary()
        assert listener.jobs_over(3600.0) == []

    def test_clear(self, ctx):
        listener = JobListener()
        ctx.install_job_listener(listener)
        ctx.parallelize([1], 1).collect()
        listener.clear()
        assert listener.events() == []


class TestAsciiFigures:
    def test_histogram_peak_marked_dense(self):
        values = np.concatenate([np.zeros(100), np.ones(2) * 10])
        strip = ascii_histogram(values, width=20)
        assert len(strip) == 20
        assert strip[0] == "@"  # the dense bin

    def test_range_markers_present(self):
        values = np.linspace(0, 10, 50)
        strip = ascii_histogram(values, lower=0.0, upper=10.0, width=30)
        assert strip[0] == "["
        assert strip[-1] == "]"

    def test_constant_values(self):
        strip = ascii_histogram(np.array([5.0, 5.0]), width=10)
        assert len(strip) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))

    def test_render_fig3_panel(self, tpch_tables):
        from repro.analysis import study_neighbourhood
        from repro.tpch.workload import query_by_name

        study = study_neighbourhood(
            query_by_name("tpch1"), tpch_tables,
            sample_sizes=(50,), addition_samples=50,
        )
        panel = render_fig3_panel(study)
        assert "tpch1" in panel
        assert "coverage" in panel
        assert "n=50" in panel
