"""Tests for analysis utilities, the workload registry, and integration."""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    format_value,
    relative_rmse_percent,
    rmse,
    study_neighbourhood,
)
from repro.workloads import Workload, all_workloads, workload_by_name


class TestRmse:
    def test_zero_for_exact(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])

    def test_relative_percent(self):
        # estimates off by exactly 10% of a constant truth
        assert relative_rmse_percent([110.0], [100.0]) == pytest.approx(10.0)

    def test_relative_zero_truth_falls_back(self):
        assert relative_rmse_percent([1.0], [0.0]) == 100.0


class TestReporting:
    def test_format_value_styles(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(3.14159) == "3.142"
        assert format_value(1.5e9) == "1.500e+09"
        assert format_value(2.0e-7) == "2.000e-07"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.0], ["longer", 123456789.0]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned


class TestNeighbourhoodStudy:
    def test_study_runs_and_covers(self, tpch_tables):
        from repro.tpch.workload import query_by_name

        study = study_neighbourhood(
            query_by_name("tpch1"),
            tpch_tables,
            sample_sizes=(50, 200),
            addition_samples=50,
        )
        assert study.query_name == "tpch1"
        assert len(study.ranges) == 2
        for entry in study.ranges:
            assert 0.0 <= entry.coverage <= 1.0
        # larger samples cover at least as much for a count query
        assert study.ranges[-1].coverage >= 0.9


class TestWorkloadRegistry:
    def test_nine_workloads(self):
        workloads = all_workloads()
        assert len(workloads) == 9
        assert [w.name for w in workloads] == [
            "tpch1", "tpch4", "tpch13", "tpch16", "tpch21",
            "tpch6", "tpch11", "kmeans", "linreg",
        ]

    def test_support_counts_match_table_ii(self):
        workloads = all_workloads()
        assert sum(w.flex_supported for w in workloads) == 5
        assert sum(not w.flex_supported for w in workloads) == 4

    def test_query_types(self):
        types = {w.name: w.query_type for w in all_workloads()}
        assert types["tpch1"] == "count"
        assert types["tpch6"] == "arithmetic"
        assert types["kmeans"] == "ml"

    def test_tables_factory(self):
        workload = workload_by_name("tpch1")
        tables = workload.make_tables(500, 1)
        assert len(tables["lineitem"]) == 500

    def test_ml_tables_factory(self):
        workload = workload_by_name("kmeans")
        tables = workload.make_tables(300, 2)
        assert len(tables["points"]) == 300

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_by_name("tpch99")


class TestEndToEndIntegration:
    def test_full_pipeline_all_workloads_small(self):
        """Every workload runs end-to-end under UPA at toy scale."""
        from repro.core import UPAConfig, UPASession

        for workload in all_workloads():
            tables = workload.make_tables(600, 3)
            session = UPASession(UPAConfig(sample_size=40, seed=1))
            result = session.run(workload.query, tables, epsilon=1.0)
            assert result.noisy_output.shape == (
                workload.query.output_dim,
            ), workload.name
            assert result.local_sensitivity >= 0.0

    def test_utility_degrades_gracefully(self):
        """Noisy counts stay within a few sensitivities of the truth."""
        from repro.core import UPAConfig, UPASession
        from repro.tpch.workload import query_by_name

        workload = workload_by_name("tpch1")
        tables = workload.make_tables(2000, 5)
        query = query_by_name("tpch1")
        session = UPASession(UPAConfig(sample_size=100, seed=2))
        result = session.run(query, tables, epsilon=1.0)
        truth = query.output(tables)[0]
        # Laplace(scale=2) at eps=1: within ~20 with overwhelming probability
        assert abs(result.noisy_scalar() - truth) < 50
