"""Tests for logical plans, the optimizer, and physical execution."""

import pytest

from repro.common.errors import AnalysisError
from repro.sql import SQLSession, col, count_star, lit, sum_
from repro.sql.expr import Column
from repro.sql.logical import Aggregate, Filter, Join, Project, Scan, Sort
from repro.sql.optimizer import optimize, prune_columns, substitute
from repro.sql.types import Field, Schema


@pytest.fixture
def session():
    sess = SQLSession()
    sess.create_table(
        "t", [{"a": i, "b": i % 4, "c": f"s{i}"} for i in range(40)]
    )
    sess.create_table("u", [{"k": i, "v": i * 10} for i in range(8)])
    sess.create_table("e", [])
    return sess


class TestLogicalValidation:
    def test_filter_unknown_column(self, session):
        scan = session.table("t").plan
        with pytest.raises(AnalysisError):
            Filter(scan, col("missing") > 1)

    def test_project_unknown_column(self, session):
        scan = session.table("t").plan
        with pytest.raises(AnalysisError):
            Project(scan, [col("missing")])

    def test_project_duplicate_names(self, session):
        scan = session.table("t").plan
        with pytest.raises(AnalysisError):
            Project(scan, [col("a"), col("a")])

    def test_join_bad_key_side(self, session):
        left = session.table("t").plan
        right = session.table("u").plan
        with pytest.raises(AnalysisError):
            Join(left, right, [(col("k"), col("k"))])

    def test_join_unknown_type(self, session):
        left = session.table("t").plan
        right = session.table("u").plan
        with pytest.raises(AnalysisError):
            Join(left, right, [(col("a"), col("k"))], how="cross")

    def test_join_schema_merge(self, session):
        join = Join(
            session.table("t").plan,
            session.table("u").plan,
            [(col("a"), col("k"))],
        )
        assert join.schema.names == ["a", "b", "c", "k", "v"]

    def test_semi_join_schema_is_left_only(self, session):
        join = Join(
            session.table("t").plan,
            session.table("u").plan,
            [(col("a"), col("k"))],
            how="semi",
        )
        assert join.schema.names == ["a", "b", "c"]

    def test_residual_validation(self, session):
        with pytest.raises(AnalysisError):
            Join(
                session.table("t").plan,
                session.table("u").plan,
                [(col("a"), col("k"))],
                how="semi",
                residual=col("__r_nope") > 1,
            )

    def test_aggregate_duplicate_aliases(self, session):
        with pytest.raises(AnalysisError):
            Aggregate(
                session.table("t").plan,
                [],
                [count_star("x"), count_star("x")],
            )

    def test_schema_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Field("a"), Field("a")])

    def test_pretty_print_shows_tree(self, session):
        df = session.table("t").filter(col("a") > 3).select("a")
        text = df.plan.pretty()
        assert "Project" in text and "Filter" in text and "Scan(t)" in text


class TestOptimizerRules:
    def test_substitute(self):
        expr = (col("x") + 1) > col("y")
        replaced = substitute(expr, {"x": col("a")})
        assert replaced.references() == {"a", "y"}

    def test_combined_filters(self, session):
        df = session.table("t").filter(col("a") > 1).filter(col("b") < 3)
        plan = optimize(df.plan)
        filters = [n for n in plan.walk() if isinstance(n, Filter)]
        assert len(filters) == 1

    def test_filter_pushed_through_rename_project(self, session):
        df = session.table("t").select(col("a").alias("x"), "b")
        df = df.filter(col("x") > 5)
        plan = optimize(df.plan)
        # The filter must now sit below the projection.
        node = plan
        assert isinstance(node, Project)

    def test_filter_not_pushed_through_computed_project(self, session):
        df = session.table("t").select((col("a") + 1).alias("x"))
        df = df.filter(col("x") > 5)
        plan = optimize(df.plan)
        assert isinstance(plan, Filter)  # stays above the projection

    def test_filter_split_into_join_sides(self, session):
        df = session.table("t").join(session.table("u"), on=[("a", "k")])
        df = df.filter((col("b") == 1) & (col("v") > 10))
        plan = optimize(df.plan)
        join = next(n for n in plan.walk() if isinstance(n, Join))
        assert isinstance(join.left, Filter) or isinstance(
            join.left, Project
        )  # pushed left (possibly under pruning projection)
        left_filters = [
            n for n in join.left.walk() if isinstance(n, Filter)
        ]
        right_filters = [
            n for n in join.right.walk() if isinstance(n, Filter)
        ]
        assert left_filters and right_filters

    def test_prune_columns_inserts_projection(self, session):
        df = session.table("t").select("a")
        plan = prune_columns(df.plan)
        scans_children = [
            n for n in plan.walk() if isinstance(n, Project)
            and isinstance(n.child, Scan)
        ]
        assert scans_children, plan.pretty()
        assert scans_children[-1].schema.names == ["a"]

    def test_optimized_results_match_unoptimized(self, session):
        df = (
            session.table("t")
            .join(session.table("u"), on=[("a", "k")])
            .filter((col("v") > 20) & (col("b") != 2))
            .group_by("b")
            .agg(count_star("n"), sum_(col("v"), "sv"))
            .order_by("b")
        )
        optimized = df.collect()
        session.enable_optimizer = False
        unoptimized = df.collect()
        assert optimized == unoptimized


class TestPhysicalExecution:
    def test_scan(self, session):
        assert session.table("u").count() == 8

    def test_empty_table(self, session):
        assert session.table("e").collect() == []

    def test_global_aggregate_on_empty_input_yields_one_row(self, session):
        out = session.table("t").filter(col("a") > 999).agg(count_star("n"))
        assert out.collect() == [{"n": 0}]

    def test_group_by(self, session):
        rows = (
            session.table("t").group_by("b").agg(count_star("n")).collect()
        )
        assert {r["b"]: r["n"] for r in rows} == {0: 10, 1: 10, 2: 10, 3: 10}

    def test_grouped_count_shortcut(self, session):
        rows = session.table("t").group_by("b").count("n").collect()
        assert all(r["n"] == 10 for r in rows)

    def test_join_inner(self, session):
        out = session.table("t").join(session.table("u"), on=[("a", "k")])
        assert out.count() == 8

    def test_join_column_collision_rejected(self, session):
        with pytest.raises(AnalysisError):
            session.table("t").join(session.table("t"), on="a").collect()

    def test_left_join_fills_none(self, session):
        out = (
            session.table("u")
            .join(session.table("t"), on=[("k", "a")], how="left")
            .collect()
        )
        assert len(out) == 8
        assert all("b" in row for row in out)

    def test_left_join_unmatched(self, session):
        session.create_table("w", [{"k2": 999, "z": 1}])
        out = (
            session.table("w")
            .join(session.table("u"), on=[("k2", "k")], how="left")
            .collect()
        )
        assert out == [{"k2": 999, "z": 1, "k": None, "v": None}]

    def test_semi_and_anti_partition_rows(self, session):
        base = session.table("t")
        other = session.table("u")
        semi = base.semi_join(other, on=[("a", "k")]).count()
        anti = base.anti_join(other, on=[("a", "k")]).count()
        assert semi + anti == base.count()

    def test_residual_semi_join(self, session):
        session.create_table(
            "li", [{"ok": 1, "sk": 1}, {"ok": 1, "sk": 2}, {"ok": 2, "sk": 9}]
        )
        out = session.table("li").semi_join(
            session.table("li"),
            on=[("ok", "ok")],
            residual=col("__r_sk") != col("sk"),
        )
        assert out.count() == 2

    def test_residual_anti_join(self, session):
        session.create_table(
            "li2", [{"ok": 1, "sk": 1}, {"ok": 1, "sk": 2}, {"ok": 2, "sk": 9}]
        )
        out = session.table("li2").anti_join(
            session.table("li2"),
            on=[("ok", "ok")],
            residual=col("__r_sk") != col("sk"),
        )
        assert out.collect() == [{"ok": 2, "sk": 9}]

    def test_sort_mixed_directions(self, session):
        rows = (
            session.table("t")
            .select("b", "a")
            .order_by("b", "a", ascending=[True, False])
            .collect()
        )
        assert rows[0]["b"] == 0 and rows[0]["a"] == 36

    def test_limit(self, session):
        assert len(session.table("t").limit(5).collect()) == 5

    def test_distinct_rows(self, session):
        out = session.table("t").select("b").distinct().collect()
        assert sorted(r["b"] for r in out) == [0, 1, 2, 3]

    def test_with_column(self, session):
        out = session.table("u").with_column("w", col("v") * 2).first()
        assert out["w"] == out["v"] * 2

    def test_scalar(self, session):
        assert session.table("t").agg(count_star("n")).scalar() == 40

    def test_scalar_rejects_multi_rows(self, session):
        with pytest.raises(AnalysisError):
            session.table("t").select("a").scalar()

    def test_show_renders(self, session, capsys):
        session.table("u").show(2)
        captured = capsys.readouterr().out
        assert "k" in captured and "v" in captured

    def test_explain_prints_plan(self, session, capsys):
        session.table("u").filter(col("v") > 1).explain()
        assert "Scan(u)" in capsys.readouterr().out

    def test_avg_aggregate(self, session):
        from repro.sql.functions import avg

        value = session.table("u").agg(avg(col("v"), "m")).scalar()
        assert value == pytest.approx(35.0)

    def test_count_distinct_in_groups(self, session):
        from repro.sql.functions import count_distinct

        rows = (
            session.table("t")
            .group_by("b")
            .agg(count_distinct(col("c"), "u"))
            .collect()
        )
        assert all(r["u"] == 10 for r in rows)

    def test_sort_single_direction_descending(self, session):
        rows = session.table("u").order_by("v", ascending=False).collect()
        assert [r["v"] for r in rows] == sorted(
            (r["v"] for r in rows), reverse=True
        )
