"""Unit tests for core RDD transformations and actions."""

import pytest

from repro.common.errors import EngineError
from repro.engine import EngineContext


class TestBasicTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3]).map(lambda v: v * 2).collect() == [2, 4, 6]

    def test_map_preserves_order(self, ctx):
        data = list(range(97))
        assert ctx.parallelize(data, 5).map(lambda v: v).collect() == data

    def test_filter(self, ctx):
        out = ctx.parallelize(range(10)).filter(lambda v: v % 3 == 0).collect()
        assert out == [0, 3, 6, 9]

    def test_flat_map(self, ctx):
        out = ctx.parallelize([1, 2]).flat_map(lambda v: [v] * v).collect()
        assert out == [1, 2, 2]

    def test_map_partitions(self, ctx):
        rdd = ctx.parallelize(range(8), 4)
        sums = rdd.map_partitions(lambda it: [sum(it)]).collect()
        assert sum(sums) == sum(range(8))
        assert len(sums) == 4

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(range(8), 4)
        out = rdd.map_partitions_with_index(lambda i, it: [(i, len(list(it)))])
        assert dict(out.collect()) == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_glom(self, ctx):
        chunks = ctx.parallelize(range(6), 3).glom().collect()
        assert chunks == [[0, 1], [2, 3], [4, 5]]

    def test_key_by(self, ctx):
        out = ctx.parallelize(["ab", "c"]).key_by(len).collect()
        assert out == [(2, "ab"), (1, "c")]

    def test_union(self, ctx):
        left = ctx.parallelize([1, 2], 2)
        right = ctx.parallelize([3], 1)
        union = left.union(right)
        assert union.collect() == [1, 2, 3]
        assert union.num_partitions == 3

    def test_distinct(self, ctx):
        out = sorted(ctx.parallelize([3, 1, 3, 2, 1]).distinct().collect())
        assert out == [1, 2, 3]

    def test_sample_is_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        first = rdd.sample(0.1, seed=7).collect()
        second = rdd.sample(0.1, seed=7).collect()
        assert first == second
        assert 40 < len(first) < 200

    def test_sample_fraction_bounds(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([1]).sample(1.5)

    def test_zip_with_index(self, ctx):
        out = ctx.parallelize(list("abcd"), 3).zip_with_index().collect()
        assert out == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]

    def test_repartition_preserves_records(self, ctx):
        rdd = ctx.parallelize(range(50), 2).repartition(7)
        assert rdd.num_partitions == 7
        assert sorted(rdd.collect()) == list(range(50))

    def test_coalesce(self, ctx):
        rdd = ctx.parallelize(range(10), 5).coalesce(2)
        assert rdd.num_partitions == 2
        assert sorted(rdd.collect()) == list(range(10))

    def test_coalesce_no_op_when_growing(self, ctx):
        rdd = ctx.parallelize(range(4), 2)
        assert rdd.coalesce(8) is rdd

    def test_sort_by_ascending(self, ctx):
        data = [5, 3, 8, 1, 9, 2]
        out = ctx.parallelize(data, 3).sort_by(lambda v: v).collect()
        assert out == sorted(data)

    def test_sort_by_descending(self, ctx):
        data = list(range(40))
        out = ctx.parallelize(data, 4).sort_by(lambda v: v, ascending=False)
        assert out.collect() == sorted(data, reverse=True)

    def test_empty_rdd(self, ctx):
        assert ctx.empty_rdd().collect() == []
        assert ctx.empty_rdd().count() == 0


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(123), 7).count() == 123

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 6)).reduce(lambda a, b: a * b) == 120

    def test_reduce_with_empty_partitions(self, ctx):
        # 2 records across 4 partitions: two partitions are empty.
        assert ctx.parallelize([10, 20], 4).reduce(lambda a, b: a + b) == 30

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.empty_rdd().reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        assert ctx.parallelize(range(5), 3).fold(0, lambda a, b: a + b) == 10

    def test_aggregate(self, ctx):
        total, count = ctx.parallelize(range(10), 3).aggregate(
            (0, 0),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)

    def test_sum_min_max_mean(self, ctx):
        rdd = ctx.parallelize([4, 1, 9, 2], 2)
        assert rdd.sum() == 16
        assert rdd.min() == 1
        assert rdd.max() == 9
        assert rdd.mean() == 4.0

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.empty_rdd().mean()

    def test_take(self, ctx):
        rdd = ctx.parallelize(range(100), 10)
        assert rdd.take(3) == [0, 1, 2]
        assert rdd.take(0) == []
        assert rdd.take(1000) == list(range(100))

    def test_first(self, ctx):
        assert ctx.parallelize([7, 8]).first() == 7
        with pytest.raises(EngineError):
            ctx.empty_rdd().first()

    def test_is_empty(self, ctx):
        assert ctx.empty_rdd().is_empty()
        assert not ctx.parallelize([1]).is_empty()

    def test_count_by_value(self, ctx):
        out = ctx.parallelize(["a", "b", "a"], 2).count_by_value()
        assert out == {"a": 2, "b": 1}

    def test_top(self, ctx):
        assert ctx.parallelize([3, 9, 1, 7], 2).top(2) == [9, 7]

    def test_top_with_key(self, ctx):
        out = ctx.parallelize(["bb", "a", "ccc"], 2).top(1, key=len)
        assert out == ["ccc"]

    def test_foreach_with_accumulator(self, ctx):
        acc = ctx.accumulator(0, lambda a, b: a + b)
        ctx.parallelize(range(10), 4).foreach(lambda v: acc.add(v))
        assert acc.value == 45

    def test_invalid_partition_count(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([1], 1).map(lambda v: v).coalesce(0).collect()


class TestLineage:
    def test_chained_transformations(self, ctx):
        out = (
            ctx.parallelize(range(20), 4)
            .map(lambda v: v + 1)
            .filter(lambda v: v % 2 == 0)
            .map(lambda v: v * 10)
            .collect()
        )
        assert out == [v * 10 for v in range(1, 21) if v % 2 == 0]

    def test_dependencies_recorded(self, ctx):
        base = ctx.parallelize([1, 2])
        mapped = base.map(lambda v: v)
        assert mapped.dependencies == (base,)

    def test_rdd_ids_unique(self, ctx):
        ids = {ctx.parallelize([1]).rdd_id for _ in range(10)}
        assert len(ids) == 10

    def test_lazy_evaluation(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(3)).map(lambda v: calls.append(v) or v)
        assert calls == []  # nothing computed yet
        rdd.collect()
        assert sorted(calls) == [0, 1, 2]
