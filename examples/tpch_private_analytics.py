"""Private analytics over TPC-H: all nine workloads under one budget.

Run with:  python examples/tpch_private_analytics.py

A data analyst submits the paper's nine queries (seven TPC-H + two ML)
through one UPA session guarded by a privacy accountant.  The script
prints, per query: the true answer, the released noisy answer, the
inferred sensitivity, and what FLEX would have said (including the
queries it cannot handle at all).
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import flex_local_sensitivity
from repro.common.errors import FlexUnsupportedError, PrivacyBudgetExceeded
from repro.core import UPAConfig, UPASession
from repro.dp import PrivacyAccountant
from repro.sql import SQLSession
from repro.tpch.datagen import register_tables
from repro.workloads import all_workloads


def main() -> None:
    epsilon_per_query = 0.1
    accountant = PrivacyAccountant(total_epsilon=1.0)
    session = UPASession(
        UPAConfig(sample_size=1000, seed=7), accountant=accountant
    )

    rows = []
    for workload in all_workloads():
        tables = workload.make_tables(20_000, seed=3)
        truth = workload.query.output(tables)
        try:
            result = session.run(
                workload.query, tables, epsilon=epsilon_per_query
            )
        except PrivacyBudgetExceeded as exc:
            print(f"budget exhausted before {workload.name}: {exc}")
            break

        flex_text = "unsupported"
        if hasattr(workload.query, "dataframe"):
            sql = SQLSession()
            register_tables(sql, tables)
            try:
                flex = flex_local_sensitivity(
                    workload.query.dataframe(sql).plan, tables
                )
                flex_text = f"{flex.sensitivity:.3g}"
            except FlexUnsupportedError:
                pass

        truth_text = (
            f"{truth[0]:.2f}" if truth.shape[0] == 1
            else f"vector[{truth.shape[0]}]"
        )
        noisy_text = (
            f"{result.noisy_scalar():.2f}" if truth.shape[0] == 1
            else f"vector[{result.noisy_output.shape[0]}]"
        )
        rows.append(
            [
                workload.name,
                truth_text,
                noisy_text,
                result.estimated_local_sensitivity,
                flex_text,
            ]
        )

    print(
        format_table(
            ["query", "true answer", "released (eps=0.1)",
             "UPA sensitivity", "FLEX sensitivity"],
            rows,
        )
    )
    spent_eps, _ = accountant.spent()
    print(f"\nprivacy budget spent: {spent_eps:.2f} of "
          f"{accountant.total_epsilon:.2f}")
    print("note: FLEX supports 5/9 queries and wildly overestimates the "
          "join-heavy ones; UPA answers all nine.")


if __name__ == "__main__":
    main()
