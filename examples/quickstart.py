"""Quickstart: answer a counting query under epsilon-iDP with UPA.

Run with:  python examples/quickstart.py

Walks the whole pipeline on a generated TPC-H dataset:
1. generate data;
2. run TPC-H Q1 (a count) under UPA with automatically inferred
   sensitivity;
3. compare the noisy answer to the true one;
4. show the low-level Table I operator API doing the same thing.
"""

from repro import EngineContext, UPAConfig, UPASession, dpread
from repro.dp import PrivacyAccountant
from repro.tpch import TPCHConfig, TPCHGenerator, query_by_name


def main() -> None:
    # -- 1. data ------------------------------------------------------------
    tables = TPCHGenerator(TPCHConfig(scale_rows=20_000, seed=42)).generate()
    print(f"generated {len(tables['lineitem'])} lineitems, "
          f"{len(tables['orders'])} orders")

    # -- 2. one UPA query -----------------------------------------------------
    query = query_by_name("tpch1")  # SELECT COUNT(*) FROM lineitem
    session = UPASession(
        UPAConfig(sample_size=1000, seed=0),
        accountant=PrivacyAccountant(total_epsilon=1.0),
    )
    result = session.run(query, tables, epsilon=0.5)

    # -- 3. what happened ------------------------------------------------------
    true_count = query.output(tables)[0]
    print(f"\ntrue count                    : {true_count:.0f}")
    print(f"noisy count (released)        : {result.noisy_scalar():.2f}")
    print(f"inferred local sensitivity    : {result.local_sensitivity:.3f}")
    print(f"inferred output range         : "
          f"[{result.inferred_range.lower[0]:.1f}, "
          f"{result.inferred_range.upper[0]:.1f}]")
    print(f"sampled neighbouring datasets : {result.sample_size} removals "
          f"+ {result.sample_size} additions")
    print(f"end-to-end time               : {result.elapsed_seconds:.2f}s")

    # -- 4. the Table I operator API -------------------------------------------
    engine = EngineContext()
    rdd = engine.parallelize(tables["lineitem"])
    dpo = dpread(rdd, sample_size=100, seed=1)
    neighbours, total = dpo.map_dp(lambda _rec: 1).reduce_dp(
        lambda a, b: a + b
    )
    print(f"\ndpread/mapDP/reduceDP         : result={total}, "
          f"neighbour outputs all equal {neighbours[0]}")


if __name__ == "__main__":
    main()
