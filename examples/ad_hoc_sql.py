"""Ad-hoc SQL under iDP: the "no query modification" workflow.

Run with:  python examples/ad_hoc_sql.py

An analyst types SQL; UPA parses it, checks it is linear in the table
being protected, derives the Mapper/Reducer decomposition automatically
(provenance compilation), infers the sensitivity and releases a noisy
answer — no per-query code, no manual bounds.  Queries that are *not*
linear in the protected table are rejected with an explanation rather
than silently under-protected.
"""

from repro.common.errors import QueryShapeError
from repro.core import UPAConfig, UPASession
from repro.dp import PrivacyAccountant
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.queries import base as samplers

QUERIES = [
    # (sql, protected table, domain sampler)
    ("SELECT COUNT(*) AS n FROM orders WHERE o_orderpriority = '1-URGENT'",
     "orders", samplers.random_order),
    ("SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue "
     "FROM lineitem WHERE l_shipdate >= DATE '1995-01-01'",
     "lineitem", samplers.random_lineitem),
    ("SELECT COUNT(*) AS n FROM customer, orders "
     "WHERE c_custkey = o_custkey AND c_mktsegment = 'BUILDING'",
     "customer", samplers.random_customer),
    ("SELECT COUNT(*) AS n FROM partsupp WHERE ps_availqty < 500 "
     "AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier "
     "WHERE s_comment LIKE '%Complaints%')",
     "partsupp", samplers.random_partsupp),
]

REJECTED = [
    # GROUP BY is not a scalar release
    ("SELECT o_orderpriority, COUNT(*) AS n FROM orders "
     "GROUP BY o_orderpriority", "orders"),
    # AVG is not linear in records
    ("SELECT AVG(l_quantity) AS q FROM lineitem", "lineitem"),
]


def main() -> None:
    tables = TPCHGenerator(TPCHConfig(scale_rows=20_000, seed=1)).generate()
    accountant = PrivacyAccountant(total_epsilon=4.0)
    session = UPASession(
        UPAConfig(sample_size=1000, seed=4), accountant=accountant
    )

    for sql, protect, sampler in QUERIES:
        result = session.run_sql(
            sql, tables, protected_table=protect, epsilon=0.5,
            domain_sampler=sampler,
        )
        print(f"SQL      : {sql}")
        print(f"protects : one record of {protect!r}")
        print(f"true     : {result.plain_output[0]:.2f}")
        print(f"released : {result.noisy_scalar():.2f} "
              f"(sensitivity {result.local_sensitivity:.3f})\n")

    print("queries UPA refuses (non-linear in the protected records):")
    for sql, protect in REJECTED:
        try:
            session.run_sql(sql, tables, protected_table=protect, epsilon=0.5)
        except QueryShapeError as exc:
            print(f"  {sql!r}\n    -> {exc}")


if __name__ == "__main__":
    main()
