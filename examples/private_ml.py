"""Differentially private machine learning with UPA.

Run with:  python examples/private_ml.py

Trains Linear Regression privately: every gradient step is a UPA query
(one Mapper+Reducer round, the paper's LR decomposition), so each step
pays epsilon from the accountant and receives noise calibrated to the
step's *inferred* sensitivity — no manual clipping bound needed.
KMeans gets one private Lloyd update the same way.
"""

import numpy as np

from repro.core import UPAConfig, UPASession
from repro.dp import PrivacyAccountant
from repro.mining import (
    KMeansQuery,
    LifeScienceConfig,
    LinearRegressionQuery,
    make_life_science_tables,
)


def private_linear_regression(tables, steps: int, epsilon_per_step: float):
    """Gradient descent where each step is privatized by UPA."""
    accountant = PrivacyAccountant(total_epsilon=steps * epsilon_per_step)
    dim = len(tables["points"][0]["features"])
    weights = np.zeros(dim + 1)
    history = []
    for step in range(steps):
        query = LinearRegressionQuery(
            dim=dim, learning_rate=0.005, initial_weights=weights
        )
        session = UPASession(
            UPAConfig(sample_size=500, seed=step), accountant=accountant
        )
        result = session.run(query, tables, epsilon=epsilon_per_step)
        weights = result.noisy_output
        mse = LinearRegressionQuery.mean_squared_error(tables, weights)
        history.append((step, result.local_sensitivity, mse))
    return weights, history


def main() -> None:
    config = LifeScienceConfig(
        num_records=20_000, dim=4, num_clusters=3, seed=11
    )
    tables = make_life_science_tables(config)
    print(f"life-science dataset: {config.num_records} records, "
          f"dim={config.dim}")

    # -- private linear regression -------------------------------------------
    weights, history = private_linear_regression(
        tables, steps=8, epsilon_per_step=0.5
    )
    print("\nprivate SGD (each step is one UPA query):")
    print(f"{'step':>4} {'step sensitivity':>18} {'MSE after step':>15}")
    for step, sensitivity, mse in history:
        print(f"{step:>4} {sensitivity:>18.5f} {mse:>15.2f}")

    baseline = LinearRegressionQuery(dim=4, learning_rate=0.005)
    nonprivate = baseline.train(tables, steps=8)
    print(f"\nfinal MSE private   : "
          f"{LinearRegressionQuery.mean_squared_error(tables, weights):.2f}")
    print(f"final MSE nonprivate: "
          f"{LinearRegressionQuery.mean_squared_error(tables, nonprivate):.2f}")

    # -- one private KMeans update ----------------------------------------------
    kmeans = KMeansQuery(num_clusters=3, dim=4, dataset_config=config)
    session = UPASession(
        UPAConfig(sample_size=500, seed=99),
        accountant=PrivacyAccountant(total_epsilon=1.0),
    )
    result = session.run(kmeans, tables, epsilon=1.0)
    centers = result.noisy_output.reshape(3, 4)
    true_centers = kmeans.output(tables).reshape(3, 4)
    drift = np.linalg.norm(centers - true_centers, axis=1)
    print("\nprivate KMeans update: per-center L2 noise displacement "
          f"{np.round(drift, 3).tolist()}")
    print(f"(sensitivity inferred for the update: "
          f"{result.local_sensitivity:.5f})")


if __name__ == "__main__":
    main()
