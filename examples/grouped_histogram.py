"""DP histograms: GROUP BY with a public group domain.

Run with:  python examples/grouped_histogram.py

SQL GROUP BY cannot be released directly under DP (group keys leak).
The standard recipe — enumerate a *public* group domain from the schema
and answer each group as its own scalar query — runs each slice through
UPA with automatically inferred sensitivity.  Disjoint groups compose
in parallel, so the whole histogram costs one epsilon.
"""

from repro.core.grouped import release_histogram
from repro.tpch import TPCHConfig, TPCHGenerator
from repro.tpch.datagen import PRIORITIES, SHIPMODES
from repro.tpch.queries.base import random_lineitem, random_order


def main() -> None:
    tables = TPCHGenerator(TPCHConfig(scale_rows=20_000, seed=2)).generate()

    print("orders per priority (epsilon = 1.0, protecting orders):\n")
    result = release_histogram(
        tables,
        protected_table="orders",
        groups=PRIORITIES,  # public: the five schema-defined priorities
        group_of=lambda o: o["o_orderpriority"],
        epsilon=1.0,
        domain_sampler=random_order,
        seed=3,
    )
    print(f"{'priority':>16} {'true':>8} {'released':>10} {'sens':>6}")
    for group in PRIORITIES:
        print(f"{group:>16} {result.true_values[group]:>8.0f} "
              f"{result.released[group]:>10.2f} "
              f"{result.per_group_sensitivity[group]:>6.1f}")

    print("\nrevenue per ship mode (epsilon = 1.0, protecting lineitem):\n")
    revenue = release_histogram(
        tables,
        protected_table="lineitem",
        groups=SHIPMODES,
        group_of=lambda i: i["l_shipmode"],
        epsilon=1.0,
        value_of=lambda i: i["l_extendedprice"] * (1 - i["l_discount"]),
        domain_sampler=random_lineitem,
        seed=4,
    )
    print(f"{'mode':>16} {'true':>14} {'released':>14} {'rel err %':>10}")
    for group in SHIPMODES:
        truth = revenue.true_values[group]
        released = revenue.released[group]
        err = abs(released - truth) / truth * 100
        print(f"{group:>16} {truth:>14.0f} {released:>14.0f} {err:>10.2f}")


if __name__ == "__main__":
    main()
