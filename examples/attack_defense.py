"""The paper's threat model, acted out: RANGE ENFORCER defeats a
repeated-query attack.

Run with:  python examples/attack_defense.py

The adversary (a data analyst) knows a victim's record is either in the
dataset or not.  They submit the same counting query twice — once
against the dataset and once against the dataset minus the victim — and
try to infer membership from the two answers.  Without enforcement the
difference in *raw* outputs leaks membership exactly; UPA detects the
neighbouring resubmission via per-partition output comparison
(Algorithm 2), removes two records to break adjacency, and clamps +
noises the output, so the released answers no longer pinpoint the
victim.
"""

import numpy as np

from repro.core import UPAConfig, UPASession
from repro.dp import PrivacyAccountant
from repro.tpch import TPCHConfig, TPCHGenerator, query_by_name


def main() -> None:
    tables = TPCHGenerator(TPCHConfig(scale_rows=20_000, seed=5)).generate()
    query = query_by_name("tpch1")
    victim = tables["lineitem"][-1]
    without_victim = dict(tables)
    without_victim["lineitem"] = tables["lineitem"][:-1]

    print("adversary: submit the same COUNT(*) twice, with and without "
          "the victim's record\n")

    # -- what the raw (non-private) pipeline would leak -----------------------
    raw_with = query.output(tables)[0]
    raw_without = query.output(without_victim)[0]
    print(f"raw outputs            : {raw_with:.0f} vs {raw_without:.0f} "
          f"-> difference {raw_with - raw_without:.0f} reveals membership")

    # -- the same attack against UPA ---------------------------------------------
    session = UPASession(
        UPAConfig(sample_size=1000, seed=1),
        accountant=PrivacyAccountant(total_epsilon=1.0),
    )
    first = session.run(query, tables, epsilon=0.5)
    second = session.run(query, without_victim, epsilon=0.5)

    print(f"\nUPA first submission   : released {first.noisy_scalar():.2f} "
          f"(fresh query, no prior match)")
    print(f"UPA second submission  : released {second.noisy_scalar():.2f}")
    print(f"  detected as attack   : {second.enforcement.matched_prior}")
    print(f"  records removed      : {second.enforcement.records_removed} "
          "(forces the inputs >= 2 records apart)")
    print(f"  noise scale          : "
          f"{second.local_sensitivity / second.epsilon:.2f} "
          "(sensitivity / epsilon)")

    released_gap = abs(first.noisy_scalar() - second.noisy_scalar())
    print(f"\nreleased gap           : {released_gap:.2f} — the victim's "
          "±1 contribution is buried in enforcement + noise")

    # -- the iDP guarantee, empirically ----------------------------------------------
    print("\nempirical check: distribution of released answers overlaps "
          "between the two worlds")
    gaps = []
    for seed in range(10):
        sess = UPASession(
            UPAConfig(sample_size=500, seed=seed),
            accountant=PrivacyAccountant(total_epsilon=1.0),
        )
        a = sess.run(query, tables, epsilon=0.5).noisy_scalar()
        b = sess.run(query, without_victim, epsilon=0.5).noisy_scalar()
        gaps.append(a - b)
    print(f"released (with - without) over 10 trials: "
          f"mean {np.mean(gaps):+.2f}, std {np.std(gaps):.2f} "
          "(an exact +1 would be needed to identify the victim)")


if __name__ == "__main__":
    main()
