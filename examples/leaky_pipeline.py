"""A deliberately leaky analyst script — upalint's taint-pass fixture.

DO NOT RUN and DO NOT COPY.  Every block below violates the release
discipline the UPA pipeline depends on; ``repro lint
examples/leaky_pipeline.py`` must flag each one (UPA301–UPA304).  CI
lints this file expecting failure and excludes it from the clean-tree
gate; ``tests/test_taint.py`` asserts the exact findings.

The one *correct* release in the file is the ``declassify()`` call —
an explicit, reviewed assertion that a value is safe — and the
``session.run()`` results, which are differentially private.
"""

import logging

from repro import UPAConfig, UPASession, declassify
from repro.dp import PrivacyAccountant
from repro.tpch import TPCHConfig, TPCHGenerator, query_by_name

log = logging.getLogger("leaky")


def dump_rows(rows):
    """Helper that leaks whatever it is given — the taint pass follows
    the call from main() and flags the print with rows protected."""
    for row in rows:
        print(row)  # BAD: UPA301 via interprocedural flow


def release_with(session, query, tables):
    """Releases through a caller-supplied session; when the caller
    passes one built without an accountant this is UPA304."""
    return session.run(query, tables, epsilon=0.1)  # BAD: UPA304


def main():
    tables = TPCHGenerator(
        TPCHConfig(scale_rows=1_000, seed=7)
    ).generate()
    query = query_by_name("tpch1")

    # -- raw-record leaks (UPA301) ------------------------------------
    print(tables["lineitem"][0])  # BAD: UPA301 direct print

    victim = tables["lineitem"][-1]
    print(f"the victim's row is {victim}")  # BAD: UPA301 f-string

    log.info("first order: %s", tables["orders"][0])  # BAD: UPA301 log

    with open("dump.txt", "w") as fh:
        fh.write(str(tables["orders"][0]))  # BAD: UPA301 file write

    dump_rows(tables["lineitem"])  # leaks inside the helper

    # -- the sanctioned paths, for contrast ---------------------------
    session = UPASession(
        UPAConfig(sample_size=200, seed=0),
        accountant=PrivacyAccountant(total_epsilon=2.0),
    )
    result = session.run(query, tables, epsilon=0.2)
    print(result.noisy_scalar())  # OK: differentially private
    print(declassify(len(tables["lineitem"]),
                     reason="row count is public metadata"))  # OK

    # -- data-dependent release (UPA302) ------------------------------
    if victim["quantity"] > 10:
        session.run(query, tables, epsilon=0.2)  # BAD: UPA302

    # -- tainted privacy parameter (UPA303) ---------------------------
    eps = float(tables["lineitem"][0]["quantity"])
    session.run(query, tables, epsilon=eps)  # BAD: UPA303

    # -- uncharged session through a call (UPA304) --------------------
    bare = UPASession(UPAConfig(sample_size=200, seed=0))
    release_with(bare, query, tables)

    # -- entry-point return leak (UPA301) -----------------------------
    return tables["customer"]  # BAD: UPA301 raw records returned


if __name__ == "__main__":
    main()
