"""Figure 4(b): UPA's runtime versus the sample size n.

The paper reports near-constant runtime up to n = 1e5 because the
repeated computation over sampled records hits Spark's memory cache.
In this reproduction the O(|x|) base work dominates and the O(n)
privacy work stays a small fraction, so runtime grows far slower than
n: the harness sweeps n over two orders of magnitude and asserts the
runtime grows by a much smaller factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import cached_tables, emit_report
from repro.analysis import format_table
from repro.core import UPAConfig, UPASession

SCALE = 40_000
SAMPLE_SIZES = (100, 1000, 10_000)
QUERIES = ("tpch1", "tpch4", "tpch13", "tpch6", "linreg")


def _measure(workloads):
    rows = []
    growth = {}
    for workload in workloads:
        if workload.name not in QUERIES:
            continue
        tables = cached_tables(workload, SCALE, seed=3)
        times = []
        sensitivities = []
        for n in SAMPLE_SIZES:
            session = UPASession(UPAConfig(sample_size=n, seed=29))
            result = session.run(workload.query, tables, epsilon=0.1)
            times.append(result.elapsed_seconds)
            sensitivities.append(result.estimated_local_sensitivity)
        growth[workload.name] = times[-1] / max(times[0], 1e-9)
        rows.append([workload.name] + times + [growth[workload.name]])
    return rows, growth


def test_fig4b_runtime_vs_sample_size(benchmark, workloads):
    rows, growth = benchmark.pedantic(
        _measure, args=(workloads,), rounds=1, iterations=1
    )
    report = format_table(
        ["query"] + [f"time (s) n={n}" for n in SAMPLE_SIZES]
        + ["growth x (n: 100 -> 10000)"],
        rows,
    )
    report += (
        "\n\npaper shape (Fig. 4b): runtime nearly flat in n (their cache-"
        "hit effect); here the O(n) share stays well below linear growth: "
        "a 100x larger n costs far less than 100x the time."
    )
    emit_report("fig4b_samplesize", report)

    for name, factor in growth.items():
        assert factor < 30.0, (name, factor)  # 100x n, far sub-linear time
