"""Figure 2(b): UPA's execution time normalized to the vanilla engine.

For each query, the harness measures the end-to-end UPA pipeline (all
four phases including RANGE ENFORCER, run twice: once fresh and once on
a neighbouring dataset so both enforcement cases occur, as the paper's
methodology describes) against the vanilla MapReduce evaluation of the
same query, and reports the normalized overhead.

Expected shape (paper): overhead is bounded (the paper reports
19.1 %-130.9 %, average 77.6 % on a 5-node cluster at >100 GB scale;
our single-process engine at laptop scale shows larger ratios because
the O(n) privacy work is amortized over far fewer records — the Fig.
4(a) bench shows the ratio falling as data grows, which is the paper's
actual claim).

Also includes the ablation for the paper's core efficiency idea: the
union-preserving *reuse* of R(M(S')) versus naively re-reducing the
dataset for every sampled neighbour.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    PERF_SCALE,
    SAMPLE_SIZE,
    cached_tables,
    emit_report,
)
from repro.analysis import format_table
from repro.common.timing import Timer
from repro.core import UPAConfig, UPASession
from repro.engine.metrics import MetricsRegistry


def _measure_all(workloads):
    rows = []
    ratios = {}
    for workload in workloads:
        tables = cached_tables(workload, PERF_SCALE, seed=3)
        session = UPASession(UPAConfig(sample_size=SAMPLE_SIZE, seed=17))

        _output, vanilla_time = session.run_vanilla(workload.query, tables)
        # fresh submission
        first = session.run(workload.query, tables, epsilon=0.1)
        # neighbouring resubmission: RANGE ENFORCER's removal case
        neighbour = dict(tables)
        protected = workload.query.protected_table
        neighbour[protected] = tables[protected][:-1]
        second = session.run(workload.query, neighbour, epsilon=0.1)

        upa_time = (first.elapsed_seconds + second.elapsed_seconds) / 2.0
        overhead = (upa_time / vanilla_time - 1.0) * 100.0
        ratios[workload.name] = upa_time / vanilla_time
        rows.append(
            [
                workload.name,
                vanilla_time,
                upa_time,
                overhead,
                second.enforcement.matched_prior,
                first.metrics.get(MetricsRegistry.JOBS),
            ]
        )
    return rows, ratios


def _reuse_ablation(workloads):
    """Reuse vs naive re-reduce, on a smaller setting (naive is O(n*N))."""
    scale, n = 16_000, 600
    rows = []
    for workload in workloads:
        if workload.name not in ("tpch1", "tpch6", "linreg"):
            continue
        tables = cached_tables(workload, scale, seed=5)
        with Timer() as fast_timer:
            UPASession(
                UPAConfig(sample_size=n, seed=1, reuse_intermediate=True)
            ).run(workload.query, tables, epsilon=0.1)
        with Timer() as slow_timer:
            UPASession(
                UPAConfig(sample_size=n, seed=1, reuse_intermediate=False)
            ).run(workload.query, tables, epsilon=0.1)
        rows.append(
            [workload.name, fast_timer.elapsed, slow_timer.elapsed,
             slow_timer.elapsed / max(fast_timer.elapsed, 1e-9)]
        )
    return rows


def test_fig2b_overhead(benchmark, workloads):
    rows, ratios = benchmark.pedantic(
        _measure_all, args=(workloads,), rounds=1, iterations=1
    )
    report = format_table(
        [
            "query", "vanilla (s)", "UPA (s)", "overhead %",
            "enforcer removal case hit", "engine jobs",
        ],
        rows,
    )
    report += (
        "\n\npaper shape: overhead bounded, joins highest, declines with "
        "dataset size (see fig4a); paper cluster numbers: 19.1-130.9 %, "
        "avg 77.6 %."
    )
    emit_report("fig2b_overhead", report)

    for name, ratio in ratios.items():
        assert ratio > 1.0, f"{name}: UPA cannot be faster than vanilla"
        # Wall-clock ratios are large at laptop scale because the vanilla
        # evaluation of a trivial mapper costs milliseconds while the
        # privacy work is O(n); the paper-scale claim (ratio shrinking
        # towards 1 as |x| grows) is asserted by the Fig. 4(a) bench.
        assert ratio < 1000.0, f"{name}: overhead ratio {ratio} implausible"
    # the enforcer's removal case must actually have been exercised
    assert all(row[4] for row in rows)


def test_fig2b_reuse_ablation(benchmark, workloads):
    rows = benchmark.pedantic(
        _reuse_ablation, args=(workloads,), rounds=1, iterations=1
    )
    report = format_table(
        ["query", "reuse (s)", "naive re-reduce (s)", "speedup x"], rows
    )
    report += (
        "\n\nablation of the paper's core idea: reusing R(M(S')) beats "
        "re-reducing the dataset per sampled neighbour; the gap widens "
        "linearly with |x| and n."
    )
    emit_report("fig2b_reuse_ablation", report)
    for _name, fast, slow, speedup in rows:
        assert speedup > 1.5, (_name, speedup)
