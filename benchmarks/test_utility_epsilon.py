"""Supplementary: released-answer utility (the paper's section VI-B claim).

The paper argues that accurate sensitivity implies high utility because
noise is proportional to the sensitivity value.  This bench makes the
implication concrete: for TPCH16 (where FLEX's estimate is ~40x the
truth at small scale and grows with data), it compares the mean
absolute error of releases under UPA's inferred sensitivity versus
noise calibrated to FLEX's static sensitivity at the same epsilon, and
sweeps epsilon to show the usual privacy/utility trade-off.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_tables, emit_report
from repro.analysis import format_table
from repro.analysis.utility import noise_with_sensitivity, released_error_curve
from repro.baselines import flex_local_sensitivity
from repro.sql import SQLSession
from repro.tpch.datagen import register_tables
from repro.workloads import workload_by_name

SCALE = 10_000
EPSILONS = (0.01, 0.1, 1.0)


def _measure():
    workload = workload_by_name("tpch16")
    tables = cached_tables(workload, SCALE, seed=3)
    truth = float(workload.query.output(tables)[0])

    study = released_error_curve(
        workload.query, tables, epsilons=EPSILONS, trials=8,
        sample_size=500, seed=5,
    )
    sql = SQLSession()
    register_tables(sql, tables)
    flex_sens = flex_local_sensitivity(
        workload.query.dataframe(sql).plan, tables
    ).sensitivity

    rows = []
    for point in study.points:
        flex_mae = noise_with_sensitivity(
            truth, flex_sens, point.epsilon, trials=200, seed=9
        )
        rows.append(
            [point.epsilon, point.mean_absolute_error,
             point.mean_relative_error * 100, flex_mae,
             flex_mae / max(point.mean_absolute_error, 1e-12)]
        )
    return truth, flex_sens, rows


def test_utility_upa_vs_flex_noise(benchmark):
    truth, flex_sens, rows = benchmark.pedantic(_measure, rounds=1,
                                                iterations=1)
    report = format_table(
        ["epsilon", "UPA MAE", "UPA rel err %", "FLEX-noise MAE",
         "FLEX/UPA error x"],
        rows,
    )
    report += (
        f"\n\nTPCH16, true answer {truth:.0f}, FLEX sensitivity "
        f"{flex_sens:.0f}: noise calibrated to FLEX's estimate destroys "
        "utility at every epsilon (paper section VI-B's argument)."
    )
    emit_report("utility_epsilon", report)

    # error shrinks as epsilon grows
    maes = [row[1] for row in rows]
    assert maes[0] > maes[-1]
    # FLEX-calibrated noise is at least 5x worse at every epsilon
    for row in rows:
        assert row[4] > 5.0, row
