"""Table II: the nine evaluated queries and their UPA/FLEX support.

Regenerates the paper's support matrix by actually *attempting* each
query: UPA must run end-to-end, FLEX must either produce a sensitivity
or raise FlexUnsupportedError.  Expected shape: UPA 9/9, FLEX 5/9
(exactly the counting queries).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_tables, emit_report
from repro.analysis import format_table
from repro.baselines import flex_local_sensitivity
from repro.common.errors import FlexUnsupportedError
from repro.core import UPAConfig, UPASession
from repro.sql import SQLSession
from repro.tpch.datagen import register_tables

SCALE = 5_000


def _build_matrix(workloads):
    rows = []
    upa_supported = 0
    flex_supported = 0
    for workload in workloads:
        tables = cached_tables(workload, SCALE, seed=0)
        session = UPASession(UPAConfig(sample_size=200, seed=0))
        try:
            session.run(workload.query, tables, epsilon=0.1)
            upa_ok = True
            upa_supported += 1
        except Exception:  # pragma: no cover - support must not fail
            upa_ok = False

        if hasattr(workload.query, "dataframe"):
            sql = SQLSession()
            register_tables(sql, tables)
            try:
                flex_local_sensitivity(
                    workload.query.dataframe(sql).plan, tables
                )
                flex_ok = True
            except FlexUnsupportedError:
                flex_ok = False
        else:
            flex_ok = False  # ML queries are not SQL at all
        flex_supported += flex_ok
        rows.append(
            [workload.name, workload.query_type,
             "yes" if upa_ok else "NO", "yes" if flex_ok else "no"]
        )
    return rows, upa_supported, flex_supported


def test_table2_support_matrix(benchmark, workloads):
    rows, upa_supported, flex_supported = benchmark.pedantic(
        _build_matrix, args=(workloads,), rounds=1, iterations=1
    )
    report = format_table(
        ["query", "type", "supported by UPA", "supported by FLEX"], rows
    )
    report += (
        f"\n\nUPA supports {upa_supported}/9 queries; "
        f"FLEX supports {flex_supported}/9 (paper: 9/9 vs 5/9)."
    )
    emit_report("table2_support", report)

    assert upa_supported == 9
    assert flex_supported == 5
    flex_by_name = {row[0]: row[3] for row in rows}
    for name in ("tpch1", "tpch4", "tpch13", "tpch16", "tpch21"):
        assert flex_by_name[name] == "yes"
    for name in ("tpch6", "tpch11", "kmeans", "linreg"):
        assert flex_by_name[name] == "no"
