"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark prints its report table and also writes it to
``benchmarks/results/<name>.txt`` so ``EXPERIMENTS.md`` can reference
stable artifacts.  Dataset generation and brute-force ground truths are
cached per (scale, seed) because several figures share them.
"""

from __future__ import annotations

import functools
import os
from typing import Dict, Tuple

import pytest

from repro.baselines.bruteforce import BruteForceResult, exact_local_sensitivity
from repro.workloads import Workload, all_workloads

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: default evaluation scale (lineitem rows / ML points) for accuracy figs.
ACCURACY_SCALE = 60_000
#: default scale for the performance figures.
PERF_SCALE = 40_000
#: the paper's evaluation epsilon.
EPSILON = 0.1
#: the paper's default sample size n.
SAMPLE_SIZE = 1000

_TABLE_CACHE: Dict[Tuple[str, int, int], dict] = {}
_GT_CACHE: Dict[Tuple[str, int, int], BruteForceResult] = {}


def cached_tables(workload: Workload, scale: int, seed: int) -> dict:
    # The seven TPC-H workloads share one dataset factory, so key the
    # cache by the factory rather than the workload name.
    factory = getattr(workload.make_tables, "__name__", workload.name)
    key = (factory, scale, seed)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = workload.make_tables(scale, seed)
    return _TABLE_CACHE[key]


def cached_ground_truth(
    workload: Workload, scale: int, seed: int, addition_samples: int = 1000
) -> BruteForceResult:
    key = (workload.name, scale, seed)
    if key not in _GT_CACHE:
        tables = cached_tables(workload, scale, seed)
        _GT_CACHE[key] = exact_local_sensitivity(
            workload.query, tables, addition_samples=addition_samples, seed=1
        )
    return _GT_CACHE[key]


def emit_report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n=== {name} ===\n{text}\n(saved to {path})")


@pytest.fixture(scope="session")
def workloads():
    return all_workloads()
