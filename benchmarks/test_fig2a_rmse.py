"""Figure 2(a): RMSE of inferred local sensitivity, UPA vs FLEX.

For each of the nine queries, over several independently generated
datasets (trials), compare:

* UPA's inferred local sensitivity (Algorithm 1 + the estimator
  documented in ``repro.core.inference``),
* FLEX's statically derived sensitivity (where supported),

against the brute-force ground truth (Definition II.1, exhaustive
removals + a sampled addition pool), as relative RMSE in percent.

Expected shape (paper): UPA small for all nine (paper average 3.81 %);
FLEX exact on TPCH1 but one-to-many orders of magnitude worse on the
join-heavy queries, worst on TPCH16/TPCH21; TPCH21 is UPA's least
accurate query (outlier influences the sampled normal fit misses).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    ACCURACY_SCALE,
    SAMPLE_SIZE,
    cached_ground_truth,
    cached_tables,
    emit_report,
)
from repro.analysis import format_table, relative_rmse_percent
from repro.baselines import flex_local_sensitivity
from repro.common.errors import FlexUnsupportedError
from repro.core import UPAConfig, UPASession
from repro.sql import SQLSession
from repro.tpch.datagen import register_tables

TRIALS = (3, 7, 12)


def _run_trials(workloads):
    per_query = {}
    for workload in workloads:
        upa_estimates, flex_estimates, truths = [], [], []
        flex_ok = True
        for seed in TRIALS:
            tables = cached_tables(workload, ACCURACY_SCALE, seed)
            truth = cached_ground_truth(workload, ACCURACY_SCALE, seed)
            truths.append(truth.local_sensitivity)

            session = UPASession(
                UPAConfig(sample_size=SAMPLE_SIZE, seed=seed * 101 + 9)
            )
            result = session.run(workload.query, tables, epsilon=0.1)
            upa_estimates.append(result.estimated_local_sensitivity)

            if flex_ok and hasattr(workload.query, "dataframe"):
                sql = SQLSession()
                register_tables(sql, tables)
                try:
                    flex_estimates.append(
                        flex_local_sensitivity(
                            workload.query.dataframe(sql).plan, tables
                        ).sensitivity
                    )
                except FlexUnsupportedError:
                    flex_ok = False
            else:
                flex_ok = False
        per_query[workload.name] = {
            "truths": truths,
            "upa": upa_estimates,
            "flex": flex_estimates if flex_ok else None,
        }
    return per_query


def test_fig2a_sensitivity_rmse(benchmark, workloads):
    per_query = benchmark.pedantic(
        _run_trials, args=(workloads,), rounds=1, iterations=1
    )

    rows = []
    upa_errors = {}
    flex_errors = {}
    for name, data in per_query.items():
        upa_rmse = relative_rmse_percent(data["upa"], data["truths"])
        upa_errors[name] = upa_rmse
        if data["flex"] is not None:
            flex_rmse = relative_rmse_percent(data["flex"], data["truths"])
            flex_errors[name] = flex_rmse
        else:
            flex_rmse = None
        rows.append(
            [
                name,
                float(np.mean(data["truths"])),
                float(np.mean(data["upa"])),
                upa_rmse,
                float(np.mean(data["flex"])) if data["flex"] else None,
                flex_rmse,
            ]
        )

    report = format_table(
        [
            "query", "ground truth LS (mean)", "UPA LS (mean)",
            "UPA RMSE %", "FLEX LS (mean)", "FLEX RMSE %",
        ],
        rows,
    )
    avg_upa = float(np.mean(list(upa_errors.values())))
    report += (
        f"\n\naverage UPA relative RMSE: {avg_upa:.2f} % "
        "(paper: 3.81 %)\n"
        "paper shape: FLEX exact on TPCH1; 1-5+ orders of magnitude worse "
        "than UPA on join queries; TPCH21 worst for both."
    )
    emit_report("fig2a_rmse", report)

    # --- shape assertions -------------------------------------------------
    # UPA is near-exact on the discrete count queries.
    for name in ("tpch1", "tpch13", "tpch16"):
        assert upa_errors[name] < 25.0, (name, upa_errors[name])
    # FLEX matches the trivial count exactly (paper: zero error).
    assert flex_errors["tpch1"] == pytest.approx(0.0, abs=1e-9)
    # FLEX's error explodes on the multi-join/filter queries.
    for name in ("tpch16", "tpch21"):
        assert flex_errors[name] > 100.0 * max(upa_errors[name], 1.0), name
    # FLEX is never meaningfully better than UPA on supported queries.
    for name, flex_rmse in flex_errors.items():
        assert flex_rmse >= upa_errors[name] - 1e-6, name
    # Overall UPA error stays moderate (paper: 3.81 %; our synthetic data
    # has sparser filters, see EXPERIMENTS.md).
    assert avg_upa < 40.0
