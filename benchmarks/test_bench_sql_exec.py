"""Interpreted vs compiled/fused SQL execution (TPC-H Q1/Q6/Q13).

Runs each query's SQL text through two sessions over the same generated
tables: the interpreted baseline (``compile_expressions=False`` with
broadcast joins disabled — one ``map``/``filter`` RDD hop per logical
node, ``Expression.eval`` per row) and the default compiled path
(codegen'd closures, Scan→Filter→Project fusion into a single
``map_partitions``, broadcast hash joins, plan cache).  Results must
agree row for row with ``max_abs_diff == 0`` — the compiled executor is
an optimization, never a semantics change.

Writes ``BENCH_sql_exec.json`` at the repo root (override with
``BENCH_SQL_EXEC_OUTPUT``).  Knobs:

* ``BENCH_SQL_EXEC_SCALE`` — lineitem rows to generate (default 8000).
* ``BENCH_SQL_EXEC_MIN_SPEEDUP`` — per-query gate (default 1.0: the
  compiled path must never be slower; the committed JSON at the default
  scale shows well over the 2x the ISSUE requires).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_sql_exec.py -q
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List

from benchmarks.conftest import emit_report
from repro.analysis import format_table
from repro.sql import SQLSession
from repro.tpch import TPCHConfig, TPCHGenerator, query_by_name

SCALE = int(os.environ.get("BENCH_SQL_EXEC_SCALE", "8000"))
MIN_SPEEDUP = float(os.environ.get("BENCH_SQL_EXEC_MIN_SPEEDUP", "1.0"))
OUTPUT = os.environ.get(
    "BENCH_SQL_EXEC_OUTPUT",
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sql_exec.json"),
)
REPEATS = 3
SEED = 11
QUERIES = ("tpch1", "tpch6", "tpch13")

#: queries whose plans contain compilable per-row work (filters,
#: projections, joins).  Q1 in this reproduction is a bare COUNT(*) —
#: both paths run the identical aggregate loop, so its speedup is noise
#: around 1.0 and it is reported but not gated.
MUST_NOT_REGRESS = ("tpch6", "tpch13")


def _session(tables: Dict[str, list], compiled: bool) -> SQLSession:
    if compiled:
        session = SQLSession()
    else:
        session = SQLSession(
            compile_expressions=False, broadcast_join_threshold=0
        )
    for name, rows in tables.items():
        session.create_table(name, rows)
    return session


def _time(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _max_abs_diff(a: List[dict], b: List[dict]) -> float:
    worst = 0.0
    for row_a, row_b in zip(a, b):
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                worst = max(worst, abs(va - vb))
            elif va != vb:
                return float("inf")
    return worst


def test_bench_sql_exec():
    tables = TPCHGenerator(TPCHConfig(scale_rows=SCALE, seed=SEED)).generate()
    results: Dict[str, Dict[str, Any]] = {}
    rows: List[list] = []
    for name in QUERIES:
        query = query_by_name(name)
        sql_text = query.sql_text()

        interpreted_session = _session(tables, compiled=False)
        compiled_session = _session(tables, compiled=True)
        # Pre-optimize the plans, then time executor.execute(...) per
        # iteration: one full physical execution per repeat.  (Timing
        # DataFrame.collect would hit the session plan cache and, for
        # global aggregates, re-collect an already-materialized row.)
        interpreted_plan = interpreted_session.optimize_plan(
            interpreted_session.sql(sql_text).plan
        )
        compiled_plan = compiled_session.optimize_plan(
            compiled_session.sql(sql_text).plan
        )

        def run_interpreted():
            return interpreted_session.executor.execute(
                interpreted_plan
            ).collect()

        def run_compiled():
            return compiled_session.executor.execute(compiled_plan).collect()

        interpreted_rows = run_interpreted()
        compiled_rows = run_compiled()
        identical = interpreted_rows == compiled_rows
        max_diff = _max_abs_diff(interpreted_rows, compiled_rows)

        interpreted_seconds = _time(run_interpreted)
        compiled_seconds = _time(run_compiled)
        entry = {
            "rows": len(compiled_rows),
            "interpreted_seconds": interpreted_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": interpreted_seconds / max(compiled_seconds, 1e-12),
            "identical": identical,
            "max_abs_diff": max_diff,
        }
        results[name] = entry
        rows.append(
            [
                name,
                entry["rows"],
                f"{interpreted_seconds:.4f}",
                f"{compiled_seconds:.4f}",
                f"{entry['speedup']:.1f}x",
                identical,
            ]
        )

    payload = {
        "benchmark": "sql_exec_compiled_vs_interpreted",
        "scale": SCALE,
        "repeats": REPEATS,
        "seed": SEED,
        "queries": results,
    }
    output = os.path.abspath(OUTPUT)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = format_table(
        ["query", "rows", "interpreted (s)", "compiled (s)", "speedup",
         "identical"],
        rows,
    )
    report += f"\n\n(JSON written to {output})"
    emit_report("bench_sql_exec", report)

    # Row-for-row agreement is non-negotiable at any scale.
    for name, entry in results.items():
        assert entry["identical"], (name, entry)
        assert entry["max_abs_diff"] == 0.0, (name, entry)
    # Speed: the compiled path must never lose where there is compilable
    # work; the headline 2x+ margins are recorded in the committed JSON
    # rather than gated here, so the check stays robust on noisy CI.
    for name in MUST_NOT_REGRESS:
        assert results[name]["speedup"] >= MIN_SPEEDUP, (
            name, results[name],
        )
