"""Batched vs scalar neighbour generation (the union-preserving hot path).

Times the exact pipeline UPA runs per query — map the n sampled
records, all-but-one folds via prefix/suffix, combine with the base
aggregate, finalize 2n neighbour outputs — once through the scalar
monoid defaults (``MapReduceQuery``'s batch-method fallbacks, which
loop over ``map_record``/``combine``/``finalize``) and once through
each workload's vectorized batch kernels.

Writes a machine-readable ``BENCH_neighbours.json`` at the repo root
(override with ``BENCH_NEIGHBOURS_OUTPUT``) so CI can archive it and
readers can diff speedups across commits.  Knobs:

* ``BENCH_NEIGHBOURS_N`` — sample size n (default 1000, the paper's).
* ``BENCH_NEIGHBOURS_SCALE`` — dataset scale (default 8000 rows).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_neighbours.py -q
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List

import numpy as np

from benchmarks.conftest import cached_tables, emit_report
from repro.analysis import format_table
from repro.common.rng import make_rng
from repro.core.query import MapReduceQuery
from repro.workloads import Workload, all_workloads

N = int(os.environ.get("BENCH_NEIGHBOURS_N", "1000"))
SCALE = int(os.environ.get("BENCH_NEIGHBOURS_SCALE", "8000"))
OUTPUT = os.environ.get(
    "BENCH_NEIGHBOURS_OUTPUT",
    os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_neighbours.json"
    ),
)
REPEATS = 3
SEED = 17

#: workloads whose batched path must beat the scalar path even at the
#: tiny CI scale (their kernels are pure numpy end to end).
MUST_NOT_REGRESS = ("tpch1", "tpch6")


def _scalar_neighbours(query, records, extra_records, aux) -> np.ndarray:
    """The pipeline through MapReduceQuery's scalar batch defaults."""
    base = MapReduceQuery
    mapped = base.map_batch(query, records, aux)
    extras = base.map_batch(query, extra_records, aux)
    removal = base.finalize_batch(
        query,
        base.combine_batch(
            query, query.zero(), base.prefix_suffix_batch(query, mapped)
        ),
        aux,
    )
    f_x_agg = base.fold_batch(query, mapped)
    addition = base.finalize_batch(
        query, base.combine_batch(query, f_x_agg, extras), aux
    )
    return np.vstack(
        [np.asarray(removal, dtype=float), np.asarray(addition, dtype=float)]
    )


def _batched_neighbours(query, records, extra_records, aux) -> np.ndarray:
    """The same pipeline through the workload's vectorized kernels."""
    mapped = query.map_batch(records, aux)
    extras = query.map_batch(extra_records, aux)
    removal = query.finalize_batch(
        query.combine_batch(
            query.zero(), query.prefix_suffix_batch(mapped)
        ),
        aux,
    )
    f_x_agg = query.fold_batch(mapped)
    addition = query.finalize_batch(
        query.combine_batch(f_x_agg, extras), aux
    )
    return np.vstack(
        [np.asarray(removal, dtype=float), np.asarray(addition, dtype=float)]
    )


def _time(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _measure(workload: Workload) -> Dict[str, Any]:
    tables = cached_tables(workload, SCALE, seed=SEED)
    query = workload.query
    aux = query.build_aux(tables)
    records = tables[query.protected_table][:N]
    rng = make_rng(SEED, f"bench-neighbours-{workload.name}")
    extra_records = [
        query.sample_domain_record(rng, tables) for _ in range(len(records))
    ]

    scalar_out = _scalar_neighbours(query, records, extra_records, aux)
    batched_out = _batched_neighbours(query, records, extra_records, aux)
    close = bool(
        np.allclose(batched_out, scalar_out, rtol=1e-9, atol=1e-12)
    )
    max_diff = (
        float(np.max(np.abs(batched_out - scalar_out)))
        if scalar_out.size
        else 0.0
    )

    scalar_seconds = _time(
        _scalar_neighbours, query, records, extra_records, aux
    )
    batched_seconds = _time(
        _batched_neighbours, query, records, extra_records, aux
    )
    return {
        "n": len(records),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / max(batched_seconds, 1e-12),
        "allclose": close,
        "max_abs_diff": max_diff,
    }


def test_bench_batched_neighbours(workloads):
    results: Dict[str, Dict[str, Any]] = {}
    rows: List[list] = []
    for workload in workloads:
        entry = _measure(workload)
        results[workload.name] = entry
        rows.append(
            [
                workload.name,
                entry["n"],
                f"{entry['scalar_seconds']:.4f}",
                f"{entry['batched_seconds']:.4f}",
                f"{entry['speedup']:.1f}x",
                entry["allclose"],
            ]
        )

    payload = {
        "benchmark": "batched_neighbour_generation",
        "sample_size": N,
        "scale": SCALE,
        "repeats": REPEATS,
        "workloads": results,
    }
    output = os.path.abspath(OUTPUT)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = format_table(
        ["query", "n", "scalar (s)", "batched (s)", "speedup", "allclose"],
        rows,
    )
    report += f"\n\n(JSON written to {output})"
    emit_report("bench_neighbours", report)

    # Correctness is non-negotiable at any scale.
    for name, entry in results.items():
        assert entry["allclose"], (name, entry["max_abs_diff"])
    # Speed: asserted only where the batched path is pure numpy and the
    # margin is huge; ">= 1.0" keeps the check robust on noisy CI boxes.
    for name in MUST_NOT_REGRESS:
        assert results[name]["speedup"] >= 1.0, (name, results[name])
