"""Figure 4(a): UPA's performance overhead versus dataset size.

The paper's point: the extra work UPA does (sensitivity inference over
n = 1000 sampled neighbours, RANGE ENFORCER bookkeeping) is *constant*
in the dataset size, so the overhead normalized to vanilla execution
shrinks as data grows.  The harness measures the UPA/vanilla wall-time
ratio at three scales and asserts the decreasing trend per query.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SAMPLE_SIZE, cached_tables, emit_report
from repro.analysis import format_table
from repro.core import UPAConfig, UPASession

SCALES = (10_000, 40_000, 160_000)


def _measure(workloads):
    rows = []
    trend = {}
    for workload in workloads:
        ratios = []
        for scale in SCALES:
            tables = cached_tables(workload, scale, seed=3)
            session = UPASession(UPAConfig(sample_size=SAMPLE_SIZE, seed=23))
            _out, vanilla_time = session.run_vanilla(workload.query, tables)
            result = session.run(workload.query, tables, epsilon=0.1)
            ratios.append(result.elapsed_seconds / max(vanilla_time, 1e-9))
        trend[workload.name] = ratios
        rows.append([workload.name] + [
            (r - 1.0) * 100.0 for r in ratios
        ])
    return rows, trend


def test_fig4a_overhead_shrinks_with_scale(benchmark, workloads):
    rows, trend = benchmark.pedantic(
        _measure, args=(workloads,), rounds=1, iterations=1
    )
    report = format_table(
        ["query"] + [f"overhead % @ {s} rows" for s in SCALES], rows
    )
    report += (
        "\n\npaper shape (Fig. 4a): overhead decreases as datasets grow, "
        "because sensitivity inference costs O(n) regardless of |x|."
    )
    emit_report("fig4a_scaling", report)

    declining = 0
    for name, ratios in trend.items():
        if ratios[-1] < ratios[0]:
            declining += 1
    # the decreasing trend must hold for the large majority of queries
    assert declining >= 7, trend
