"""Incremental session sweep: primed ``append()`` vs a cold re-run.

For each swept row count and executor backend the harness builds a
tpch6 dataset, holds back ~1% of the protected table, and runs two
sessions with identical seeds side by side:

* the *incremental* session releases via ``run`` then two ``append``
  calls (the first append primes the element-block cache, the second is
  the timed release), and
* the *cold* session performs the same three releases as full
  ``run()`` calls over the externally-grown table, so both sessions'
  per-run RNG streams (sample draw, noise) stay in lockstep.

The timed pair is release #3 on both sides: the primed append versus
the cold re-run of the identical release.  Bitwise equivalence
(``max_abs_diff == 0.0`` across noisy/plain/removal/addition outputs)
is asserted unconditionally at every sweep point — the incremental
path may only skip recomputation, never change results.  The speedup
gate (default ``>= 5x``) follows ``BENCH_backend``'s convention: it is
enforced only when ``os.cpu_count() >= 4`` and the point has
``rows >= 10_000``; smaller machines record honest numbers and report
the gate as skipped.

Writes ``BENCH_incremental.json`` at the repo root (override with
``BENCH_INCR_OUTPUT``).

Knobs:

* ``BENCH_INCR_ROWS`` — comma-separated row counts (default
  ``1000,4000,10000``).
* ``BENCH_INCR_MIN_SPEEDUP`` — the conditional gate (default 5.0).
* ``BENCH_INCR_REPEATS`` — best-of repetitions of the whole paired
  experiment (default 3); each repetition uses fresh sessions because
  a release cannot be replayed inside one session.
* ``BENCH_INCR_SAMPLE`` — UPA sample size (default 100; large enough
  that successive releases separate under RANGE ENFORCER at every
  swept scale).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_incremental.py -q
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, List

from benchmarks.conftest import emit_report
from repro.analysis import format_table
from repro.common.config import EngineConfig
from repro.core.session import UPAConfig, UPASession
from repro.engine.context import EngineContext
from repro.workloads import workload_by_name

ROWS = [
    int(v)
    for v in os.environ.get("BENCH_INCR_ROWS", "1000,4000,10000").split(",")
]
MIN_SPEEDUP = float(os.environ.get("BENCH_INCR_MIN_SPEEDUP", "5.0"))
REPEATS = int(os.environ.get("BENCH_INCR_REPEATS", "3"))
SAMPLE = int(os.environ.get("BENCH_INCR_SAMPLE", "100"))
OUTPUT = os.environ.get(
    "BENCH_INCR_OUTPUT",
    os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_incremental.json"
    ),
)
SEED = 11
WORKLOAD = "tpch6"
DELTA_FRACTION = 0.01
BACKENDS = ("threads", "processes")

GATE_MIN_ROWS = 10_000
GATE_MIN_CPUS = 4


def _max_abs_diff(a, b) -> float:
    import numpy as np

    worst = 0.0
    for x, y in (
        (a.noisy_output, b.noisy_output),
        (a.plain_output, b.plain_output),
        (a.removal_outputs, b.removal_outputs),
        (a.addition_outputs, b.addition_outputs),
    ):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            return float("inf")
        if x.size:
            worst = max(worst, float(np.max(np.abs(x - y))))
    return worst


def _engine(backend: str) -> EngineContext:
    return EngineContext(
        EngineConfig(backend=backend, max_workers=4, default_parallelism=4)
    )


def _experiment(rows: int, backend: str) -> Dict[str, Any]:
    """One paired run; returns timings for release #3 on both paths."""
    workload = workload_by_name(WORKLOAD)
    protected = workload.query.protected_table
    tables = workload.make_tables(rows, SEED)
    records = tables[protected]
    delta_n = max(4, int(len(records) * DELTA_FRACTION))
    delta = records[-delta_n:]
    del records[-delta_n:]
    half = delta_n // 2

    incr = UPASession(
        UPAConfig(seed=SEED, sample_size=SAMPLE), engine=_engine(backend)
    )
    cold = UPASession(
        UPAConfig(seed=SEED, sample_size=SAMPLE), engine=_engine(backend)
    )
    try:
        tab_i = dict(tables)
        tab_i[protected] = list(records)
        tab_c = dict(tables)
        tab_c[protected] = list(records)

        incr.run(workload.query, tab_i)
        cold.run(workload.query, tab_c)
        incr.append(delta[:half])  # primes the element-block cache
        tab_c[protected].extend(delta[:half])
        cold.run(workload.query, tab_c)

        start = time.perf_counter()
        r_i = incr.append(delta[half:])
        append_seconds = time.perf_counter() - start
        tab_c[protected].extend(delta[half:])
        start = time.perf_counter()
        r_c = cold.run(workload.query, tab_c)
        cold_seconds = time.perf_counter() - start

        stats = incr._last_incremental or {}
        return {
            "append_seconds": append_seconds,
            "cold_seconds": cold_seconds,
            "max_abs_diff": _max_abs_diff(r_i, r_c),
            "delta_fraction": stats.get("delta_fraction", 1.0),
            "records_reused": stats.get("records_reused", 0),
            "appended_rows": delta_n - half,
            "base_rows": len(records) + half,
        }
    finally:
        incr.engine.stop()
        cold.engine.stop()


def _sweep() -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    for rows in ROWS:
        for backend in BACKENDS:
            best: Dict[str, Any] = {}
            worst_diff = 0.0
            for _ in range(REPEATS):
                trial = _experiment(rows, backend)
                worst_diff = max(worst_diff, trial["max_abs_diff"])
                if (
                    not best
                    or trial["append_seconds"] < best["append_seconds"]
                ):
                    best = trial
            entry = dict(best)
            entry["max_abs_diff"] = worst_diff
            entry["rows"] = rows
            entry["backend"] = backend
            entry["speedup_vs_cold"] = entry["cold_seconds"] / max(
                entry["append_seconds"], 1e-12
            )
            entries.append(entry)
    return entries


def test_bench_incremental():
    sweep = _sweep()
    cpu_count = os.cpu_count() or 1
    gate_enforced = cpu_count >= GATE_MIN_CPUS and any(
        e["rows"] >= GATE_MIN_ROWS for e in sweep
    )
    payload = {
        "benchmark": "incremental_append_sweep",
        "environment": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": REPEATS,
            "sample_size": SAMPLE,
            "seed": SEED,
            "workload": WORKLOAD,
            "delta_fraction": DELTA_FRACTION,
        },
        "gate": {
            "min_rows": GATE_MIN_ROWS,
            "min_cpus": GATE_MIN_CPUS,
            "min_speedup": MIN_SPEEDUP,
            "enforced": gate_enforced,
            "reason": (
                "enforced: parallel hardware and a large-enough sweep point"
                if gate_enforced
                else (
                    f"skipped: cpu_count={cpu_count} < {GATE_MIN_CPUS} or "
                    f"no sweep point with rows >= {GATE_MIN_ROWS}; honest "
                    "numbers recorded anyway"
                )
            ),
        },
        "sweep": sweep,
    }
    output = os.path.abspath(OUTPUT)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    table_rows = [
        [
            e["rows"],
            e["backend"],
            e["appended_rows"],
            f"{e['append_seconds'] * 1e3:.2f}",
            f"{e['cold_seconds'] * 1e3:.2f}",
            f"{e['speedup_vs_cold']:.1f}x",
            f"{e['delta_fraction']:.4f}",
            e["max_abs_diff"],
        ]
        for e in sweep
    ]
    report = format_table(
        ["rows", "backend", "appended", "append (ms)", "cold (ms)",
         "speedup", "delta_frac", "max_abs_diff"],
        table_rows,
    )
    report += f"\n(JSON written to {output})"
    emit_report("bench_incremental", report)

    # Bitwise equivalence is non-negotiable at any scale, on any machine.
    for entry in sweep:
        assert entry["max_abs_diff"] == 0.0, entry
        assert entry["records_reused"] > 0, entry
        assert entry["delta_fraction"] < 0.05, entry
    if gate_enforced:
        gated = [e for e in sweep if e["rows"] >= GATE_MIN_ROWS]
        assert gated, "sweep missing the gated point; widen BENCH_INCR_ROWS"
        for entry in gated:
            assert entry["speedup_vs_cold"] >= MIN_SPEEDUP, entry
