"""Disabled-tracer overhead on the union-preserving hot path.

The observability layer promises to be zero-cost when off: the ambient
tracer defaults to :data:`~repro.obs.tracing.NULL_TRACER`, whose
``span()`` hands back one shared no-op context manager, and hot paths
gate attribute construction on ``tracer.enabled``.  This benchmark
holds that promise to a number.

Span count per run is fixed (~8: one run span, five phases, two engine
jobs) regardless of data size, so the right metric is the *absolute*
cost those no-op entries add, expressed against what one real
``UPASession.run`` costs at the same configuration:

    overhead = (traced_kernel - bare_kernel) / session_run_seconds

The kernel is the batched neighbour-generation pipeline (the same one
``test_bench_neighbours`` times) bare vs wrapped in disabled-tracer
spans at session granularity.  The assertion is overhead < 5 %; the
raw kernel-vs-kernel ratio and the enabled-tracer cost are recorded in
the JSON artifact for the curious (enabled tracing is allowed to cost
something).

A second test holds the *enabled* live-monitoring stack to the same
bound at run granularity: a real ``UPASession.run`` with tracer,
ledger, alert engine, a sampling profiler, and a Prometheus render per
run (one scrape's worth of work) must stay within 5 % of a bare
session run.

A third test repeats the live-vs-bare comparison with
``backend="processes"``: the live run additionally ships a
:class:`~repro.obs.crossproc.SpanContext` inside every task payload
and piggybacks each worker's telemetry delta on its result tuple, so
the measured gap is exactly the cross-process telemetry cost (the
design motivation for piggybacking over a dedicated IPC channel —
there is no second queue to pay for).  Same 5 % bound.

A fourth test holds *continuous monitoring* to the bound: a session
run with a :class:`~repro.obs.timeseries.TimeSeriesStore` attached —
per-release ticks, windowed alert evaluation, and the wall-clock
sampler thread running at an aggressive 50 ms interval (20× the
default rate) — must stay within 5 % of a bare run, on both the
threads and the processes backends.

Writes ``BENCH_obs_overhead.json`` at the repo root (override with
``BENCH_OBS_OUTPUT``).  Knobs:

* ``BENCH_OBS_N`` — sample size n (default 1000).
* ``BENCH_OBS_SCALE`` — dataset scale (default 8000 rows).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_obs_overhead.py -q
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List

import numpy as np

from benchmarks.conftest import cached_tables, emit_report
from repro.analysis import format_table
from repro.common.rng import make_rng
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, Tracer
from repro.workloads import workload_by_name

N = int(os.environ.get("BENCH_OBS_N", "1000"))
SCALE = int(os.environ.get("BENCH_OBS_SCALE", "8000"))
OUTPUT = os.environ.get(
    "BENCH_OBS_OUTPUT",
    os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_obs_overhead.json"
    ),
)
REPEATS = 5
SEED = 17

#: the acceptance bound: disabled tracing must stay under this.
MAX_DISABLED_OVERHEAD = 0.05

#: the enabled live stack (tracer + ledger + alerts + profiler + one
#: Prometheus render) is held to the same bound per session run.
MAX_LIVE_OVERHEAD = 0.05

#: continuous time-series sampling (per-release ticks + windowed alert
#: evaluation + the sampler thread) is held to the same bound.
MAX_SAMPLING_OVERHEAD = 0.05

#: sampler interval used by the sampling-overhead test — 20× faster
#: than the 1 s default so the run actually overlaps several wall-clock
#: ticks; a harsher setting than any real deployment needs.
SAMPLING_INTERVAL = 0.05

#: sampling rate used by the live-overhead test — the default 100 Hz
#: halved, matching what a run monitored over a few seconds needs.
LIVE_PROFILER_HZ = 50.0

#: spans the instrumented session enters per run (upa.run + five
#: phases + two engine.job spans) — the granularity we reproduce here.
SPANS_PER_RUN = 8

#: workloads to measure; tpch1/tpch6 are the pure-numpy hot paths where
#: any fixed per-run cost is most visible.
WORKLOADS = ("tpch1", "tpch6")


def _neighbours_bare(query, records, extra_records, aux) -> np.ndarray:
    """Batched neighbour generation with no tracing at all."""
    mapped = query.map_batch(records, aux)
    extras = query.map_batch(extra_records, aux)
    removal = query.finalize_batch(
        query.combine_batch(
            query.zero(), query.prefix_suffix_batch(mapped)
        ),
        aux,
    )
    f_x_agg = query.fold_batch(mapped)
    addition = query.finalize_batch(
        query.combine_batch(f_x_agg, extras), aux
    )
    return np.vstack(
        [np.asarray(removal, dtype=float), np.asarray(addition, dtype=float)]
    )


def _neighbours_traced(tracer, query, records, extra_records, aux):
    """The same pipeline wrapped in spans at session granularity.

    Mirrors UPASession.run: one outer run span, phase spans around each
    stage, engine.job-like spans inside the map phase, with the same
    ``tracer.enabled`` gating the real call sites use.
    """
    run_span = (
        tracer.span("upa.run", query=query.name, sample_size=len(records))
        if tracer.enabled else NULL_SPAN
    )
    with run_span:
        with tracer.span("phase:partition_sample"):
            pass
        with tracer.span("phase:map"):
            with tracer.span("engine.job", partitions=2):
                mapped = query.map_batch(records, aux)
            with tracer.span("engine.job", partitions=2):
                extras = query.map_batch(extra_records, aux)
        with tracer.span("phase:reduce"):
            removal = query.finalize_batch(
                query.combine_batch(
                    query.zero(), query.prefix_suffix_batch(mapped)
                ),
                aux,
            )
            f_x_agg = query.fold_batch(mapped)
            addition = query.finalize_batch(
                query.combine_batch(f_x_agg, extras), aux
            )
        with tracer.span("phase:inference"):
            pass
        with tracer.span("phase:noise"):
            pass
    return np.vstack(
        [np.asarray(removal, dtype=float), np.asarray(addition, dtype=float)]
    )


def _time(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _session_run_seconds(workload, tables) -> float:
    """Wall time of one real (untraced) UPASession.run at this config."""
    from repro.core.session import UPAConfig, UPASession

    session = UPASession(UPAConfig(epsilon=0.1, sample_size=N, seed=SEED))
    return _time(session.run, workload.query, tables)


#: live-vs-bare comparisons time batches of runs with bare and live
#: samples interleaved: a single ~100 ms run on a shared box carries
#: enough scheduler jitter (and slow machine drift between the two
#: measurement windows) to swamp a 5 % bound.
RUNS_PER_SAMPLE = 3
LIVE_REPEATS = 7


def _interleaved_best(bare_once, live_once) -> Dict[str, float]:
    """Per-run best-of wall times for two paths, sampled interleaved.

    Each timed sample is a batch of ``RUNS_PER_SAMPLE`` calls; bare
    and live batches alternate for ``LIVE_REPEATS`` rounds so machine
    drift hits both paths equally, and the per-run minimum over rounds
    drops scheduler noise.
    """
    best = {"bare": float("inf"), "live": float("inf")}
    for _ in range(LIVE_REPEATS):
        for key, fn in (("bare", bare_once), ("live", live_once)):
            start = time.perf_counter()
            for _ in range(RUNS_PER_SAMPLE):
                fn()
            best[key] = min(best[key], time.perf_counter() - start)
    return {key: value / RUNS_PER_SAMPLE for key, value in best.items()}


def _timed_session_runs(workload, tables) -> Dict[str, float]:
    """Interleaved bare/live per-run wall times of full session runs.

    The live path runs the whole monitoring stack the way ``repro run
    --serve --profile`` wires it: in-memory tracer, ledger with an
    attached alert engine, a sampling profiler, and one Prometheus
    render of the engine's metrics snapshot (one scrape's worth of
    exporter work).  Both paths construct the session inside the timed
    region so setup cost cancels.
    """
    from repro.core.session import UPAConfig, UPASession
    from repro.obs.exporters import render_prometheus
    from repro.obs.ledger import PrivacyLedger
    from repro.obs.profiler import SamplingProfiler

    def bare_once():
        session = UPASession(
            UPAConfig(epsilon=0.1, sample_size=N, seed=SEED)
        )
        session.run(workload.query, tables)

    def live_once():
        session = UPASession(
            UPAConfig(epsilon=0.1, sample_size=N, seed=SEED),
            tracer=Tracer(),
            ledger=PrivacyLedger(),
        )
        session.attach_alerts()
        profiler = SamplingProfiler(hz=LIVE_PROFILER_HZ)
        profiler.start()
        try:
            session.run(workload.query, tables)
        finally:
            profiler.stop()
        render_prometheus(session.engine.metrics.snapshot())

    return _interleaved_best(bare_once, live_once)


def _timed_processes_runs(workload, tables) -> Dict[str, float]:
    """Best-of interleaved bare/live batches on one warm process pool.

    The worker pool is spawned and warmed *outside* the timed region —
    pool startup costs tens of milliseconds with real OS jitter, which
    would drown the signal.  The live-vs-bare gap then isolates what
    the telemetry piggyback adds per run: SpanContext pickling per
    task, worker-side span/metric bookkeeping, the shipped delta, and
    the driver-side merge.
    """
    from repro.common.config import EngineConfig
    from repro.core.session import UPAConfig, UPASession
    from repro.engine.context import EngineContext
    from repro.obs.exporters import render_prometheus
    from repro.obs.ledger import PrivacyLedger

    engine = EngineContext(EngineConfig(backend="processes",
                                        max_workers=2))
    try:
        # Spawn and warm the pool (first job forks the workers).
        engine.parallelize(range(4), 2).map(abs).collect()

        def bare_once():
            session = UPASession(
                UPAConfig(epsilon=0.1, sample_size=N, seed=SEED),
                engine=engine,
            )
            session.run(workload.query, tables)

        def live_once():
            session = UPASession(
                UPAConfig(epsilon=0.1, sample_size=N, seed=SEED),
                engine=engine,
                tracer=Tracer(),
                ledger=PrivacyLedger(),
            )
            session.attach_alerts()
            session.run(workload.query, tables)
            render_prometheus(engine.metrics.snapshot())

        return _interleaved_best(bare_once, live_once)
    finally:
        engine.stop()


def _timed_sampling_runs(workload, tables, backend: str) -> Dict[str, float]:
    """Interleaved bare/sampled per-run wall times on one warm pool.

    The sampled path wires continuous monitoring exactly the way
    ``repro run --timeseries --serve`` does: ``attach_timeseries``
    hangs the store (and the windowed alert engine it notifies) off the
    session, every release ticks it deterministically, and the daemon
    sampler adds wall-clock ticks at ``SAMPLING_INTERVAL``.
    """
    from repro.common.config import EngineConfig
    from repro.core.session import UPAConfig, UPASession
    from repro.engine.context import EngineContext

    engine = EngineContext(EngineConfig(backend=backend, max_workers=2))
    try:
        # Spawn and warm the pool outside the timed region.
        engine.parallelize(range(4), 2).map(abs).collect()

        def bare_once():
            session = UPASession(
                UPAConfig(epsilon=0.1, sample_size=N, seed=SEED),
                engine=engine,
            )
            session.run(workload.query, tables)

        def live_once():
            session = UPASession(
                UPAConfig(epsilon=0.1, sample_size=N, seed=SEED),
                engine=engine,
            )
            store = session.attach_timeseries(
                interval=SAMPLING_INTERVAL, start=True
            )
            try:
                session.run(workload.query, tables)
            finally:
                store.stop()

        return _interleaved_best(bare_once, live_once)
    finally:
        engine.stop()


def _measure_sampling(name: str, backend: str) -> Dict[str, Any]:
    workload = workload_by_name(name)
    tables = cached_tables(workload, SCALE, seed=SEED)
    timing = _timed_sampling_runs(workload, tables, backend)
    bare, live = timing["bare"], timing["live"]
    added = max(0.0, live - bare)
    return {
        "n": N,
        "backend": backend,
        "sampling_interval_seconds": SAMPLING_INTERVAL,
        "runs_per_sample": RUNS_PER_SAMPLE,
        "repeats": LIVE_REPEATS,
        "bare_run_seconds": bare,
        "live_run_seconds": live,
        "added_seconds": added,
        "live_overhead": added / bare,
    }


def _measure_processes(name: str) -> Dict[str, Any]:
    workload = workload_by_name(name)
    tables = cached_tables(workload, SCALE, seed=SEED)
    timing = _timed_processes_runs(workload, tables)
    bare, live = timing["bare"], timing["live"]
    added = max(0.0, live - bare)
    return {
        "n": N,
        "backend": "processes",
        "runs_per_sample": RUNS_PER_SAMPLE,
        "repeats": LIVE_REPEATS,
        "bare_run_seconds": bare,
        "live_run_seconds": live,
        "added_seconds": added,
        "live_overhead": added / bare,
    }


def _measure_with_retry(measure, names, bound,
                        max_retries: int = 2) -> Dict[str, Dict[str, Any]]:
    """Measure each workload, re-measuring while over ``bound``.

    These are sub-100 ms wall-clock comparisons on whatever box CI
    hands us; one unlucky measurement window (a neighbour briefly
    pinning the core) can push a healthy configuration over a 5 %
    bound.  Retries *combine* with earlier passes by taking the
    per-path minimum — noise only ever inflates a wall-clock sample,
    so the min across passes converges on the true cost, while a
    genuine regression keeps every pass over the bound.  The artifact
    records the combined estimate and how many passes fed it.
    """
    results: Dict[str, Dict[str, Any]] = {}
    for name in names:
        entry = measure(name)
        passes = 1
        while entry["live_overhead"] >= bound and passes <= max_retries:
            again = measure(name)
            passes += 1
            bare = min(entry["bare_run_seconds"], again["bare_run_seconds"])
            live = min(entry["live_run_seconds"], again["live_run_seconds"])
            added = max(0.0, live - bare)
            entry = dict(
                again,
                bare_run_seconds=bare,
                live_run_seconds=live,
                added_seconds=added,
                live_overhead=added / bare,
                measurement_passes=passes,
            )
        results[name] = entry
    return results


def _measure_live(name: str) -> Dict[str, Any]:
    workload = workload_by_name(name)
    tables = cached_tables(workload, SCALE, seed=SEED)
    timing = _timed_session_runs(workload, tables)
    bare, live = timing["bare"], timing["live"]
    added = max(0.0, live - bare)
    return {
        "n": N,
        "runs_per_sample": RUNS_PER_SAMPLE,
        "repeats": LIVE_REPEATS,
        "bare_run_seconds": bare,
        "live_run_seconds": live,
        "added_seconds": added,
        "live_overhead": added / bare,
        "profiler_hz": LIVE_PROFILER_HZ,
    }


def _measure(name: str) -> Dict[str, Any]:
    workload = workload_by_name(name)
    tables = cached_tables(workload, SCALE, seed=SEED)
    query = workload.query
    aux = query.build_aux(tables)
    records = tables[query.protected_table][:N]
    rng = make_rng(SEED, f"bench-obs-{name}")
    extra_records = [
        query.sample_domain_record(rng, tables) for _ in range(len(records))
    ]

    # Correctness first: tracing must not perturb outputs.
    bare_out = _neighbours_bare(query, records, extra_records, aux)
    null_out = _neighbours_traced(
        NULL_TRACER, query, records, extra_records, aux
    )
    assert np.array_equal(bare_out, null_out)

    bare = _time(_neighbours_bare, query, records, extra_records, aux)
    disabled = _time(
        _neighbours_traced, NULL_TRACER, query, records, extra_records, aux
    )

    enabled_tracer = Tracer()
    enabled = _time(
        _neighbours_traced, enabled_tracer, query, records, extra_records, aux
    )

    session_seconds = _session_run_seconds(workload, tables)
    added = max(0.0, disabled - bare)

    return {
        "n": len(records),
        "bare_seconds": bare,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "session_run_seconds": session_seconds,
        "added_seconds": added,
        "disabled_overhead": added / session_seconds,
        "kernel_ratio": disabled / bare - 1.0,
        "enabled_kernel_ratio": enabled / bare - 1.0,
        "spans_per_run": SPANS_PER_RUN,
    }


def test_bench_disabled_tracer_overhead():
    results: Dict[str, Dict[str, Any]] = {}
    rows: List[list] = []
    for name in WORKLOADS:
        entry = _measure(name)
        results[name] = entry
        rows.append(
            [
                name,
                entry["n"],
                f"{entry['bare_seconds'] * 1000:.3f}",
                f"{entry['disabled_seconds'] * 1000:.3f}",
                f"{entry['session_run_seconds'] * 1000:.3f}",
                f"{entry['disabled_overhead'] * 100:+.3f}%",
                f"{entry['enabled_kernel_ratio'] * 100:+.2f}%",
            ]
        )

    payload = {
        "benchmark": "disabled_tracer_overhead",
        "sample_size": N,
        "scale": SCALE,
        "repeats": REPEATS,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "workloads": results,
    }
    output = os.path.abspath(OUTPUT)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = format_table(
        ["query", "n", "bare (ms)", "disabled (ms)", "session (ms)",
         "disabled ovh", "enabled kernel"],
        rows,
    )
    report += f"\n\n(JSON written to {output})"
    emit_report("bench_obs_overhead", report)

    for name, entry in results.items():
        assert entry["disabled_overhead"] < MAX_DISABLED_OVERHEAD, (
            name, entry,
        )


def test_bench_live_monitoring_overhead():
    """The enabled live stack must cost < 5 % of a bare session run."""
    results = _measure_with_retry(_measure_live, WORKLOADS,
                                  MAX_LIVE_OVERHEAD)
    rows: List[list] = []
    for name, entry in results.items():
        rows.append(
            [
                name,
                entry["n"],
                f"{entry['bare_run_seconds'] * 1000:.3f}",
                f"{entry['live_run_seconds'] * 1000:.3f}",
                f"{entry['live_overhead'] * 100:+.3f}%",
            ]
        )

    # Merge into the same artifact the disabled-overhead test writes.
    output = os.path.abspath(OUTPUT)
    payload: Dict[str, Any] = {}
    if os.path.exists(output):
        with open(output, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.setdefault("benchmark", "disabled_tracer_overhead")
    payload["max_live_overhead"] = MAX_LIVE_OVERHEAD
    payload["live"] = results
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = format_table(
        ["query", "n", "bare run (ms)", "live run (ms)", "live ovh"],
        rows,
    )
    report += f"\n\n(JSON written to {output})"
    emit_report("bench_obs_overhead_live", report)

    for name, entry in results.items():
        assert entry["live_overhead"] < MAX_LIVE_OVERHEAD, (name, entry)


def test_bench_timeseries_sampling_overhead():
    """Continuous sampling must cost < 5 % of a bare session run.

    Gates the tentpole promise that the time-series layer is pure
    observation: read-only snapshot sampling plus ring-buffer appends,
    off the release path's critical sections, on both thread and
    process pools.
    """
    results: Dict[str, Dict[str, Any]] = {}
    rows: List[list] = []
    for backend in ("threads", "processes"):
        measured = _measure_with_retry(
            lambda name, backend=backend: _measure_sampling(name, backend),
            WORKLOADS, MAX_SAMPLING_OVERHEAD,
        )
        results[backend] = measured
        for name, entry in measured.items():
            rows.append(
                [
                    name,
                    backend,
                    entry["n"],
                    f"{entry['bare_run_seconds'] * 1000:.3f}",
                    f"{entry['live_run_seconds'] * 1000:.3f}",
                    f"{entry['live_overhead'] * 100:+.3f}%",
                ]
            )

    # Merge into the same artifact as the other overhead tests.
    output = os.path.abspath(OUTPUT)
    payload: Dict[str, Any] = {}
    if os.path.exists(output):
        with open(output, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.setdefault("benchmark", "disabled_tracer_overhead")
    payload["max_sampling_overhead"] = MAX_SAMPLING_OVERHEAD
    payload["sampling"] = results
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = format_table(
        ["query", "backend", "n", "bare run (ms)", "sampled run (ms)",
         "sampling ovh"],
        rows,
    )
    report += f"\n\n(JSON written to {output})"
    emit_report("bench_obs_overhead_sampling", report)

    for backend, measured in results.items():
        for name, entry in measured.items():
            assert entry["live_overhead"] < MAX_SAMPLING_OVERHEAD, (
                backend, name, entry,
            )


def test_bench_processes_backend_live_overhead():
    """Cross-process telemetry must cost < 5 % of a bare processes run.

    This is the measured form of the piggyback-vs-queue design claim:
    worker telemetry rides the existing result tuples, so turning the
    full live stack on over ``backend="processes"`` adds only
    serialization and merge work — no second channel, no extra
    round-trips.
    """
    results = _measure_with_retry(_measure_processes, WORKLOADS,
                                  MAX_LIVE_OVERHEAD)
    rows: List[list] = []
    for name, entry in results.items():
        rows.append(
            [
                name,
                entry["n"],
                f"{entry['bare_run_seconds'] * 1000:.3f}",
                f"{entry['live_run_seconds'] * 1000:.3f}",
                f"{entry['live_overhead'] * 100:+.3f}%",
            ]
        )

    # Merge into the same artifact as the other two overhead tests.
    output = os.path.abspath(OUTPUT)
    payload: Dict[str, Any] = {}
    if os.path.exists(output):
        with open(output, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.setdefault("benchmark", "disabled_tracer_overhead")
    payload["max_live_overhead"] = MAX_LIVE_OVERHEAD
    payload["processes_live"] = results
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = format_table(
        ["query", "n", "bare run (ms)", "live run (ms)", "live ovh"],
        rows,
    )
    report += f"\n\n(JSON written to {output})"
    emit_report("bench_obs_overhead_processes", report)

    for name, entry in results.items():
        assert entry["live_overhead"] < MAX_LIVE_OVERHEAD, (name, entry)
