"""Figure 3: output distributions of all neighbouring datasets, and how
well UPA's inferred range covers them at different sample sizes.

For each query the harness enumerates *every* removal neighbour plus a
1000-record addition pool (brute force; the paper's scatter plots), then
overlays UPA's inferred min/max lines for n in {100, 1000, 5000} and
reports per-query coverage, plus the estimator ablation: the paper's
verbatim Algorithm 1 (fixed 1/99 normal percentiles, no envelope)
versus this reproduction's default (population-extrapolated percentiles
+ sampled-output envelope + discrete fallback).

Expected shape (paper): with n = 1000 the inferred range covers
>= 98.9 % of all neighbour outputs for eight of the nine queries;
TPCH21 is the exception (outlier influences).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import cached_ground_truth, cached_tables, emit_report
from repro.analysis import format_table
from repro.core import UPAConfig, UPASession
from repro.core.inference import InferenceConfig

SCALE = 20_000
SAMPLE_SIZES = (100, 1000, 5000)

DEFAULT = InferenceConfig()
PAPER_VERBATIM = InferenceConfig(
    extrapolate=False, envelope=False, discrete_fallback=False
)


def _coverage(workload, tables, truth, sample_size, inference):
    session = UPASession(
        UPAConfig(sample_size=sample_size, seed=31, inference=inference)
    )
    inferred = session.infer_sensitivity(workload.query, tables)
    return inferred.coverage(truth.neighbour_outputs)


def _study(workloads):
    rows = []
    coverages = {}
    for workload in workloads:
        tables = cached_tables(workload, SCALE, seed=3)
        truth = cached_ground_truth(workload, SCALE, seed=3)
        per_n = [
            _coverage(workload, tables, truth, n, DEFAULT)
            for n in SAMPLE_SIZES
        ]
        verbatim = _coverage(workload, tables, truth, 1000, PAPER_VERBATIM)
        coverages[workload.name] = per_n[1]  # n = 1000
        rows.append([workload.name] + [c * 100 for c in per_n]
                    + [verbatim * 100, truth.range_width])
    return rows, coverages


def _panels(workloads) -> str:
    """ASCII renderings of the scatter panels (first coordinate only)."""
    from repro.analysis import study_neighbourhood
    from repro.analysis.figures import render_fig3_panel

    panels = []
    for workload in workloads:
        if workload.name not in ("tpch1", "tpch13", "tpch6"):
            continue
        tables = cached_tables(workload, SCALE, seed=3)
        study = study_neighbourhood(
            workload.query, tables, sample_sizes=(100, 1000),
            addition_samples=500, seed=3,
        )
        panels.append(render_fig3_panel(study))
    return "\n\n".join(panels)


def test_fig3_neighbourhood_coverage(benchmark, workloads):
    rows, coverages = benchmark.pedantic(
        _study, args=(workloads,), rounds=1, iterations=1
    )
    headers = (
        ["query"]
        + [f"coverage % (n={n})" for n in SAMPLE_SIZES]
        + ["coverage % (paper-verbatim, n=1000)", "true envelope width"]
    )
    report = format_table(headers, rows)
    report += (
        "\n\npaper shape: n=1000 covers >= 98.9 % of all neighbour outputs "
        "for 8/9 queries; the 9th (TPCH21-style outliers) is rescued by "
        "RANGE ENFORCER's clamping, not by the estimate."
    )
    report += "\n\n" + _panels(workloads)
    emit_report("fig3_coverage", report)

    well_covered = sum(1 for c in coverages.values() if c >= 0.989)
    assert well_covered >= 8, coverages
    # the default estimator is never worse than the paper-verbatim one
    for row in rows:
        assert row[2] >= row[4] - 1e-9, row


def test_fig3_sample_size_monotonicity(benchmark, workloads):
    """More samples never systematically hurt coverage (n=100 vs n=5000)."""

    def run():
        deltas = []
        for workload in workloads:
            tables = cached_tables(workload, SCALE, seed=3)
            truth = cached_ground_truth(workload, SCALE, seed=3)
            small = _coverage(workload, tables, truth, 100, DEFAULT)
            large = _coverage(workload, tables, truth, 5000, DEFAULT)
            deltas.append((workload.name, small, large))
        return deltas

    deltas = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["query", "coverage (n=100)", "coverage (n=5000)"],
        [[n, s * 100, l * 100] for n, s, l in deltas],
    )
    emit_report("fig3_sample_size", report)
    improved_or_equal = sum(1 for _n, s, l in deltas if l >= s - 0.02)
    assert improved_or_equal >= 8
