"""Executor backend sweep: threads vs processes vs inline, plus columnar.

Sweeps rows × workers × backend over picklable engine workloads — the
scalar neighbour-generation kernel (pure-Python per-record map plus
prefix/suffix folds, the shape of UPA's hot loop), a plain map/sum
pipeline, and a columnar column-sum — and records wall-clock plus
bitwise equivalence against the thread backend.  A second section
measures the columnar SQL path's per-row boxing reduction on TPC-H Q6.

Writes ``BENCH_backend.json`` at the repo root (override with
``BENCH_BACKEND_OUTPUT``) including environment metadata — the
process-vs-threads speedup is only meaningful with real cores, so the
``>= MIN_SPEEDUP`` gate is enforced only when ``os.cpu_count() >= 4``
and the sweep point has ``rows >= 10_000`` and ``workers >= 4``; on
smaller machines the honest (possibly < 1x) numbers are recorded and
the gate is reported as skipped.  Equivalence (``max_abs_diff == 0.0``
for every swept point) and the columnar boxing-reduction gate are
enforced unconditionally.

Knobs:

* ``BENCH_BACKEND_ROWS`` — comma-separated row counts (default
  ``2000,10000``).
* ``BENCH_BACKEND_WORKERS`` — comma-separated worker counts (default
  ``2,4``).
* ``BENCH_BACKEND_MIN_SPEEDUP`` — the conditional gate (default 2.0).
* ``BENCH_BACKEND_INNER_REPEATS`` — kernel work amplification so the
  compute dominates pool round-trips at small scales (default 8).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_backend.py -q
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, List

from benchmarks.conftest import emit_report
from repro.analysis import format_table
from repro.common.config import EngineConfig
from repro.common.rng import make_rng
from repro.engine import EngineContext
from repro.engine.metrics import MetricsRegistry
from repro.sql import SQLSession
from repro.tpch import TPCHConfig, TPCHGenerator, query_by_name
from repro.tpch.datagen import register_tables

ROWS = [
    int(v) for v in os.environ.get("BENCH_BACKEND_ROWS", "2000,10000").split(",")
]
WORKERS = [
    int(v) for v in os.environ.get("BENCH_BACKEND_WORKERS", "2,4").split(",")
]
MIN_SPEEDUP = float(os.environ.get("BENCH_BACKEND_MIN_SPEEDUP", "2.0"))
INNER_REPEATS = int(os.environ.get("BENCH_BACKEND_INNER_REPEATS", "8"))
OUTPUT = os.environ.get(
    "BENCH_BACKEND_OUTPUT",
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_backend.json"),
)
REPEATS = 3
SEED = 23
SQL_SCALE = int(os.environ.get("BENCH_BACKEND_SQL_SCALE", "4000"))

#: the sweep point(s) the conditional speedup gate applies to.
GATE_WORKLOAD = "neighbour_generation"
GATE_MIN_ROWS = 10_000
GATE_MIN_WORKERS = 4


class _NeighbourKernel:
    """Scalar neighbour generation over one partition, pure Python.

    Mirrors the shape of UPA's hot loop — a per-record arithmetic map
    (Q6-style predicate + revenue term) followed by all-but-one folds
    via prefix/suffix accumulation.  Being pure Python it holds the GIL
    throughout, which is exactly why it separates the thread and
    process backends.  ``inner_repeats`` amplifies the compute so pool
    round-trips do not dominate at benchmark scales.
    """

    __slots__ = ("inner_repeats",)

    def __init__(self, inner_repeats: int):
        self.inner_repeats = inner_repeats

    @staticmethod
    def _map(record):
        discount = record["discount"]
        if not 0.03 <= discount <= 0.08:
            return 0.0
        if not record["quantity"] < 40:
            return 0.0
        return record["price"] * discount

    def __call__(self, it):
        rows = list(it)
        total = 0.0
        for _ in range(self.inner_repeats):
            mapped = [self._map(r) for r in rows]
            n = len(mapped)
            prefix = [0.0] * (n + 1)
            for i, v in enumerate(mapped):
                prefix[i + 1] = prefix[i] + v
            suffix = [0.0] * (n + 1)
            for i in range(n - 1, -1, -1):
                suffix[i] = suffix[i + 1] + mapped[i]
            # 2n leave-one-out aggregates, folded to one comparable sum.
            total += sum(prefix[i] + suffix[i + 1] for i in range(n))
        return [total]


class _SquareMap:
    __slots__ = ("inner_repeats",)

    def __init__(self, inner_repeats: int):
        self.inner_repeats = inner_repeats

    def __call__(self, it):
        out = 0.0
        values = list(it)
        for _ in range(self.inner_repeats):
            for v in values:
                out += v * v
        return [out]


class _ColumnSum:
    """Column-aware kernel: sums the ``price`` column of each partition."""

    __slots__ = ("inner_repeats",)

    def __init__(self, inner_repeats: int):
        self.inner_repeats = inner_repeats

    def __call__(self, it):
        from repro.core.batch import column_values

        blocks = list(it)
        total = 0.0
        for _ in range(self.inner_repeats):
            for block in blocks:
                total += float(column_values(block, "price").sum())
        return [total]


def _make_rows(n: int) -> List[dict]:
    rng = make_rng(SEED, "bench-backend")
    return [
        {
            "price": rng.uniform(100.0, 10_000.0),
            "discount": rng.uniform(0.0, 0.1),
            "quantity": float(rng.randint(1, 50)),
        }
        for _ in range(n)
    ]


def _run(backend: str, workers: int, rows, kernel, columnar: bool):
    ctx = EngineContext(
        EngineConfig(
            backend=backend, max_workers=workers, default_parallelism=workers
        )
    )
    try:
        if columnar:
            rdd = ctx.parallelize_columnar(rows, workers).blocks_rdd()
        else:
            rdd = ctx.parallelize(rows, workers)
        rdd = rdd.map_partitions(kernel)

        out = rdd.collect()
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            rdd.collect()
            best = min(best, time.perf_counter() - start)
        fallbacks = ctx.metrics.get(MetricsRegistry.PROCESS_FALLBACKS)
        return out, best, fallbacks
    finally:
        ctx.stop()


def _max_abs_diff(a: List[float], b: List[float]) -> float:
    if len(a) != len(b):
        return float("inf")
    return max((abs(x - y) for x, y in zip(a, b)), default=0.0)


def _sweep() -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    workloads = [
        ("neighbour_generation", _NeighbourKernel(INNER_REPEATS), False),
        ("map_sum", _SquareMap(INNER_REPEATS), False),
        ("columnar_scan", _ColumnSum(INNER_REPEATS), True),
    ]
    for n in ROWS:
        rows = _make_rows(n)
        plain = [r["price"] for r in rows]
        for name, kernel, columnar in workloads:
            data = rows if name != "map_sum" else plain
            for workers in WORKERS:
                reference, _sec, _fb = _run(
                    "inline", workers, data, kernel, columnar
                )
                timings: Dict[str, float] = {}
                diffs: Dict[str, float] = {}
                fallback_counts: Dict[str, float] = {}
                for backend in ("threads", "processes"):
                    out, seconds, fallbacks = _run(
                        backend, workers, data, kernel, columnar
                    )
                    timings[backend] = seconds
                    diffs[backend] = _max_abs_diff(out, reference)
                    fallback_counts[backend] = fallbacks
                entries.append(
                    {
                        "workload": name,
                        "rows": n,
                        "workers": workers,
                        "threads_seconds": timings["threads"],
                        "processes_seconds": timings["processes"],
                        "process_speedup_vs_threads": timings["threads"]
                        / max(timings["processes"], 1e-12),
                        "max_abs_diff": max(diffs.values()),
                        "process_fallbacks": fallback_counts["processes"],
                    }
                )
    return entries


def _columnar_sql() -> Dict[str, Any]:
    tables = TPCHGenerator(
        TPCHConfig(scale_rows=SQL_SCALE, seed=SEED)
    ).generate()
    query = query_by_name("tpch6")
    outputs = {}
    metrics = {}
    timings = {}
    for columnar in (False, True):
        session = SQLSession()
        register_tables(session, tables, columnar=columnar)
        plan = session.optimize_plan(query.dataframe(session).plan)

        def run():
            return session.executor.execute(plan).collect()

        outputs[columnar] = run()
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        timings[columnar] = best
        snap = session.engine.metrics.snapshot()
        metrics[columnar] = (
            snap.get(MetricsRegistry.SQL_COLUMNAR_ROWS_SCANNED),
            snap.get(MetricsRegistry.SQL_COLUMNAR_ROWS_BOXED),
        )
    scanned, boxed = metrics[True]
    return {
        "query": "tpch6",
        "scale": SQL_SCALE,
        "identical": outputs[False] == outputs[True],
        "row_seconds": timings[False],
        "columnar_seconds": timings[True],
        "rows_scanned": scanned,
        "rows_boxed": boxed,
        "boxing_reduction": 1.0 - (boxed / scanned if scanned else 1.0),
    }


def test_bench_backend():
    sweep = _sweep()
    columnar = _columnar_sql()
    cpu_count = os.cpu_count() or 1
    gate_enforced = cpu_count >= GATE_MIN_WORKERS
    payload = {
        "benchmark": "executor_backend_sweep",
        "environment": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "inner_repeats": INNER_REPEATS,
            "repeats": REPEATS,
            "seed": SEED,
        },
        "gate": {
            "workload": GATE_WORKLOAD,
            "min_rows": GATE_MIN_ROWS,
            "min_workers": GATE_MIN_WORKERS,
            "min_speedup": MIN_SPEEDUP,
            "enforced": gate_enforced,
            "reason": (
                "enforced: enough cores for parallel speedup"
                if gate_enforced
                else f"skipped: cpu_count={cpu_count} < {GATE_MIN_WORKERS}; "
                "process-vs-thread speedup is not meaningful without "
                "parallel hardware (numbers recorded are honest "
                "single-core measurements)"
            ),
        },
        "sweep": sweep,
        "columnar_sql": columnar,
    }
    output = os.path.abspath(OUTPUT)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    table_rows = [
        [
            e["workload"],
            e["rows"],
            e["workers"],
            f"{e['threads_seconds']:.4f}",
            f"{e['processes_seconds']:.4f}",
            f"{e['process_speedup_vs_threads']:.2f}x",
            e["max_abs_diff"],
        ]
        for e in sweep
    ]
    report = format_table(
        ["workload", "rows", "workers", "threads (s)", "processes (s)",
         "speedup", "max_abs_diff"],
        table_rows,
    )
    report += (
        f"\n\ncolumnar SQL (tpch6 @ {SQL_SCALE} rows): "
        f"scanned={columnar['rows_scanned']:.0f} "
        f"boxed={columnar['rows_boxed']:.0f} "
        f"({columnar['boxing_reduction']:.0%} fewer rows boxed), "
        f"identical={columnar['identical']}"
    )
    report += f"\n(JSON written to {output})"
    emit_report("bench_backend", report)

    # Equivalence is non-negotiable at any scale, on any machine.
    for entry in sweep:
        assert entry["max_abs_diff"] == 0.0, entry
        assert entry["process_fallbacks"] == 0, entry
    assert columnar["identical"], columnar
    # The columnar path must show a measurable per-row boxing reduction.
    assert columnar["rows_scanned"] > 0
    assert columnar["rows_boxed"] < columnar["rows_scanned"], columnar
    # Speed: only gated where parallel hardware makes it meaningful.
    if gate_enforced:
        gated = [
            e
            for e in sweep
            if e["workload"] == GATE_WORKLOAD
            and e["rows"] >= GATE_MIN_ROWS
            and e["workers"] >= GATE_MIN_WORKERS
        ]
        assert gated, "sweep missing the gated point; widen ROWS/WORKERS"
        for entry in gated:
            assert entry["process_speedup_vs_threads"] >= MIN_SPEEDUP, entry
